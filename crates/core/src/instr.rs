//! Compiling query trees into machine instructions.
//!
//! Paper §2.3: *"the instruction in each memory cell corresponds to a node
//! in the query tree"*. Scans are not instructions — a scan child simply
//! makes its parent's operand a *source* operand whose page table is
//! complete from the start (the relation sits on mass storage). Every other
//! node becomes an [`Instruction`] with a [`Kernel`] — the actual operator
//! code an instruction processor executes on the pages in a work unit.

use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};

use df_query::{ops, validate, NodeId, Op, QueryTree};
use df_relalg::{
    Catalog, CmpOp, JoinCondition, Page, Predicate, Projection, Result, Schema, Tuple, TupleBuf,
    TupleRef,
};

use crate::params::{JoinAlgo, TransferMode};

/// Index of an instruction within a [`Program`].
pub type InstrId = usize;
/// Index of a query within a batch.
pub type QueryId = usize;

/// How work units are generated for a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnitGen {
    /// One unit per input page (streaming unary operators).
    PerPage,
    /// One unit per (outer page, inner page) pair (nested-loops join/cross).
    PerPair,
    /// A single unit over the complete input(s): the blocking operators the
    /// paper could not parallelize (duplicate-eliminating project, §5) plus
    /// the set operators that need the whole right side.
    WholeRelation,
}

/// The operator code executed per work unit.
#[derive(Debug, Clone)]
pub enum Kernel {
    /// σ — emit tuples satisfying the predicate.
    Restrict(Predicate),
    /// π without duplicate elimination — streaming.
    Project(Projection),
    /// Copy input to output (bare scan roots, append staging).
    Identity,
    /// Emit tuples *matching* the predicate (the tuples a delete removes —
    /// the query's result; the catalog update happens after the run).
    DeleteFilter(Predicate),
    /// Join of one page pair, by the configured [`JoinAlgo`]: a nested-loops
    /// sweep, or (for equi-joins under [`JoinAlgo::Hash`]) a probe of the
    /// inner page's raw-byte key index. Non-equi θs always sweep.
    JoinPair(JoinCondition, JoinAlgo),
    /// Cross product of one page pair.
    CrossPair,
    /// Set union of two complete inputs.
    UnionFinal,
    /// Set difference of two complete inputs.
    DifferenceFinal,
    /// π with duplicate elimination over a complete input.
    ProjectDedupFinal(Projection),
    /// A fused restrict→project→… chain compiled under
    /// [`TransferMode::Pipeline`]: every step runs per tuple over the input
    /// page's raw bytes and only final survivors are written — the
    /// intermediate pages the paper's cells would materialize never exist.
    /// Cost: the sum of the step costs ([`Kernel::tuple_ops`]), but a
    /// single page transfer.
    Span(Vec<ops::SpanStep>),
}

impl Kernel {
    /// The unit-generation class.
    pub fn unit_gen(&self) -> UnitGen {
        match self {
            Kernel::Restrict(_)
            | Kernel::Project(_)
            | Kernel::Identity
            | Kernel::DeleteFilter(_)
            | Kernel::Span(_) => UnitGen::PerPage,
            Kernel::JoinPair(..) | Kernel::CrossPair => UnitGen::PerPair,
            Kernel::UnionFinal | Kernel::DifferenceFinal | Kernel::ProjectDedupFinal(_) => {
                UnitGen::WholeRelation
            }
        }
    }

    /// Execute one page-or-pair work unit.
    ///
    /// # Panics
    /// Panics if called on a [`UnitGen::WholeRelation`] kernel (use
    /// [`Kernel::run_final`]) or with the wrong operand count.
    pub fn run_unit(&self, pages: &[&Page]) -> Vec<Tuple> {
        match self {
            Kernel::Restrict(p) => ops::restrict_page(pages[0], p),
            Kernel::Project(proj) => ops::project_page(pages[0], proj),
            Kernel::Identity => pages[0].tuples().collect(),
            Kernel::DeleteFilter(p) => pages[0].tuples().filter(|t| p.eval(t)).collect(),
            Kernel::JoinPair(c, _) => ops::join_pages(pages[0], pages[1], c),
            Kernel::CrossPair => ops::cross_pages(pages[0], pages[1]),
            Kernel::Span(steps) => ops::span_page(pages[0], steps),
            k => panic!("run_unit called on whole-relation kernel {k:?}"),
        }
    }

    /// Execute one page-or-pair work unit on the zero-copy path: predicates
    /// and join keys are evaluated directly over the encoded tuple images
    /// and surviving images are memcpy'd into the returned batch — nothing
    /// is decoded or re-encoded. `out_schema` is the instruction's output
    /// schema (carried by the compiled [`Instruction`]).
    ///
    /// Emits exactly the tuples [`Kernel::run_unit`] emits, in the same
    /// order, with byte-identical images.
    ///
    /// # Panics
    /// Panics if called on a [`UnitGen::WholeRelation`] kernel (use
    /// [`Kernel::run_final_raw`]) or with the wrong operand count.
    pub fn run_unit_raw(&self, pages: &[&Page], out_schema: &Schema) -> TupleBuf {
        match self {
            Kernel::Restrict(p) | Kernel::DeleteFilter(p) => ops::restrict_page_raw(pages[0], p),
            Kernel::Project(proj) => ops::project_page_raw(pages[0], proj, out_schema),
            Kernel::Identity => {
                let mut out = TupleBuf::new(out_schema.clone());
                for t in pages[0].tuple_refs() {
                    out.push_ref(&t);
                }
                out
            }
            Kernel::JoinPair(c, JoinAlgo::Nested) => {
                ops::join_pages_raw(pages[0], pages[1], c, out_schema)
            }
            // The hash kernel falls back to nested loops internally when
            // the condition is not an equal-width equi-join.
            Kernel::JoinPair(c, JoinAlgo::Hash) => {
                ops::hash_join_pages_raw(pages[0], pages[1], c, out_schema)
            }
            Kernel::CrossPair => ops::cross_pages_raw(pages[0], pages[1], out_schema),
            Kernel::Span(steps) => ops::span_page_raw(pages[0], steps, out_schema),
            k => panic!("run_unit_raw called on whole-relation kernel {k:?}"),
        }
    }

    /// Execute a whole-relation finalizer over complete inputs.
    ///
    /// Set semantics match `df-query::ops` exactly so machine results are
    /// oracle-comparable.
    pub fn run_final(&self, inputs: &[Vec<&Page>]) -> Vec<Tuple> {
        self.run_final_bucket(inputs, 0, 1)
    }

    /// Zero-copy whole-relation finalizer: membership sets hash the raw
    /// tuple images (the encoding is canonical — images are equal exactly
    /// when tuples are), so the serial case decodes nothing.
    pub fn run_final_raw(&self, inputs: &[Vec<&Page>], out_schema: &Schema) -> TupleBuf {
        self.run_final_bucket_raw(inputs, 0, 1, out_schema)
    }

    /// One bucket of a whole-relation finalizer on the zero-copy path.
    ///
    /// Bucket partitioning (buckets > 1) still decodes each tuple, because
    /// it must reproduce [`tuple_bucket`] exactly for per-bucket outputs to
    /// stay byte-identical to the decoded path; dedup membership and output
    /// construction stay raw regardless.
    pub fn run_final_bucket_raw(
        &self,
        inputs: &[Vec<&Page>],
        bucket: u64,
        buckets: u64,
        out_schema: &Schema,
    ) -> TupleBuf {
        assert!(
            buckets > 0 && bucket < buckets,
            "invalid bucket {bucket}/{buckets}"
        );
        let in_bucket = |t: &TupleRef<'_>| -> bool {
            buckets == 1 || tuple_bucket(&t.to_tuple(), buckets) == bucket
        };
        match self {
            Kernel::UnionFinal => {
                let mut seen: HashSet<&[u8]> = HashSet::new();
                let mut out = TupleBuf::new(out_schema.clone());
                for t in inputs[0]
                    .iter()
                    .flat_map(|p| p.tuple_refs())
                    .chain(inputs[1].iter().flat_map(|p| p.tuple_refs()))
                {
                    if in_bucket(&t) && seen.insert(t.raw()) {
                        out.push_ref(&t);
                    }
                }
                out
            }
            Kernel::DifferenceFinal => {
                let exclude: HashSet<&[u8]> = inputs[1]
                    .iter()
                    .flat_map(|p| p.tuple_refs())
                    .filter(&in_bucket)
                    .map(|t| t.raw())
                    .collect();
                let mut seen: HashSet<&[u8]> = HashSet::new();
                let mut out = TupleBuf::new(out_schema.clone());
                for t in inputs[0].iter().flat_map(|p| p.tuple_refs()) {
                    if in_bucket(&t) && !exclude.contains(t.raw()) && seen.insert(t.raw()) {
                        out.push_ref(&t);
                    }
                }
                out
            }
            Kernel::ProjectDedupFinal(proj) => {
                let mut projected = TupleBuf::new(out_schema.clone());
                for t in inputs[0].iter().flat_map(|p| p.tuple_refs()) {
                    projected.push_projected(&t, proj.indices());
                }
                let mut seen: HashSet<&[u8]> = HashSet::new();
                let mut out = TupleBuf::new(out_schema.clone());
                for t in projected.refs() {
                    if in_bucket(&t) && seen.insert(t.raw()) {
                        out.push_ref(&t);
                    }
                }
                out
            }
            k => panic!("run_final_raw called on streaming kernel {k:?}"),
        }
    }

    /// Execute one *bucket* of a whole-relation finalizer: only tuples whose
    /// hash lands in `bucket` (of `buckets`) are considered. Hash
    /// partitioning makes the blocking operators parallelizable — the
    /// parallel duplicate-elimination algorithm the paper's §5 leaves open:
    /// duplicates always hash to the same bucket, so per-bucket
    /// deduplication composes to exact global deduplication.
    ///
    /// With `buckets == 1` this is the ordinary serial finalizer.
    pub fn run_final_bucket(&self, inputs: &[Vec<&Page>], bucket: u64, buckets: u64) -> Vec<Tuple> {
        assert!(
            buckets > 0 && bucket < buckets,
            "invalid bucket {bucket}/{buckets}"
        );
        let in_bucket = |t: &Tuple| -> bool { buckets == 1 || tuple_bucket(t, buckets) == bucket };
        let tuples_of =
            |pages: &[&Page]| -> Vec<Tuple> { pages.iter().flat_map(|p| p.tuples()).collect() };
        match self {
            Kernel::UnionFinal => {
                let mut seen = HashSet::new();
                let mut out = Vec::new();
                for t in tuples_of(&inputs[0])
                    .into_iter()
                    .chain(tuples_of(&inputs[1]))
                {
                    if in_bucket(&t) && seen.insert(t.clone()) {
                        out.push(t);
                    }
                }
                out
            }
            Kernel::DifferenceFinal => {
                let exclude: HashSet<Tuple> = tuples_of(&inputs[1])
                    .into_iter()
                    .filter(&in_bucket)
                    .collect();
                let mut seen = HashSet::new();
                let mut out = Vec::new();
                for t in tuples_of(&inputs[0]) {
                    if in_bucket(&t) && !exclude.contains(&t) && seen.insert(t.clone()) {
                        out.push(t);
                    }
                }
                out
            }
            Kernel::ProjectDedupFinal(proj) => {
                // Partition on the *projected* tuple: duplicates collide
                // exactly in one bucket.
                let projected = inputs[0]
                    .iter()
                    .flat_map(|p| ops::project_page(p, proj))
                    .filter(&in_bucket);
                ops::dedup_tuples(projected)
            }
            k => panic!("run_final called on streaming kernel {k:?}"),
        }
    }

    /// Per-tuple operation count for the cost model: how many tuple-level
    /// steps the unit performs. A hash-path equi-join builds the inner
    /// index (m inserts) and probes once per outer tuple (n probes), so it
    /// charges n + m instead of the nested-loops n·m — this is what lets
    /// the simulated machines account the reduced IP service time.
    pub fn tuple_ops(&self, tuple_counts: &[usize]) -> usize {
        if let Kernel::JoinPair(c, JoinAlgo::Hash) = self {
            // Equi-joins probe; other θs sweep. (A mixed-width string key
            // also sweeps but is charged probe cost here — the cost model
            // keys on the condition, not the schemas it joins.)
            if c.op == CmpOp::Eq {
                return tuple_counts[0] + tuple_counts[1];
            }
        }
        // A fused span charges the *sum* of its step costs — each logical
        // operator still touches every input tuple — while transferring a
        // single page. The transfer saving, not a compute saving, is what
        // the pipeline mode buys.
        if let Kernel::Span(steps) = self {
            return tuple_counts[0] * steps.len().max(1);
        }
        match self.unit_gen() {
            UnitGen::PerPage => tuple_counts[0],
            UnitGen::PerPair => tuple_counts[0] * tuple_counts[1],
            UnitGen::WholeRelation => tuple_counts.iter().sum(),
        }
    }
}

/// Deterministic hash bucket of a tuple (used to partition blocking
/// operators across processors).
pub fn tuple_bucket(t: &Tuple, buckets: u64) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    t.hash(&mut h);
    h.finish() % buckets
}

/// One operand of an instruction: either a base relation (pages on disk at
/// t = 0, page table complete) or the output of a child instruction (page
/// table filled as the child produces).
#[derive(Debug, Clone)]
pub struct OperandSpec {
    /// Tuple schema of the operand's pages.
    pub schema: Schema,
    /// `Some(name)` for a base-relation operand; `None` when fed by a child.
    pub source: Option<String>,
}

/// A compiled instruction (static plan; runtime state lives in the machine).
#[derive(Debug, Clone)]
pub struct Instruction {
    /// This instruction's id.
    pub id: InstrId,
    /// The query it belongs to.
    pub query: QueryId,
    /// The query-tree node it was compiled from.
    pub node: NodeId,
    /// Operator code.
    pub kernel: Kernel,
    /// Display name of the operator.
    pub op_name: &'static str,
    /// Operands (1 or 2).
    pub operands: Vec<OperandSpec>,
    /// Output tuple schema.
    pub output_schema: Schema,
    /// Where output pages go: `Some((parent, operand_index))`, or `None`
    /// for the query root (output pages are the query result).
    pub parent: Option<(InstrId, usize)>,
}

/// A post-run database update the query requests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpdateSpec {
    /// Append the query result to `target`.
    Append {
        /// Target base relation.
        target: String,
    },
    /// Remove the query-result tuples from `target`.
    Delete {
        /// Target base relation.
        target: String,
    },
}

/// A compiled batch of queries.
#[derive(Debug, Clone)]
pub struct Program {
    /// All instructions, children before parents within each query.
    pub instructions: Vec<Instruction>,
    /// Root instruction of each query.
    pub roots: Vec<InstrId>,
    /// Per-query update to apply after the run (None for read-only).
    pub updates: Vec<Option<UpdateSpec>>,
    /// Names of every base relation the program reads.
    pub base_relations: Vec<String>,
}

/// Compile a batch of validated query trees into a [`Program`] with the
/// default (nested-loops) join algorithm and materializing transfers.
///
/// # Errors
/// Propagates validation errors (unknown relations, type mismatches…).
pub fn compile(db: &Catalog, queries: &[QueryTree]) -> Result<Program> {
    compile_with(db, queries, JoinAlgo::default(), TransferMode::default())
}

/// Compile with an explicit [`JoinAlgo`] for every join instruction and an
/// explicit [`TransferMode`] — the machines pass their params' knobs
/// through here. Under [`TransferMode::Pipeline`], maximal
/// restrict→project→… chains are fused into single [`Kernel::Span`]
/// instructions after the per-query walk.
///
/// # Errors
/// Propagates validation errors (unknown relations, type mismatches…).
pub fn compile_with(
    db: &Catalog,
    queries: &[QueryTree],
    join_algo: JoinAlgo,
    transfer: TransferMode,
) -> Result<Program> {
    let mut instructions: Vec<Instruction> = Vec::new();
    let mut roots = Vec::new();
    let mut updates = Vec::new();
    let mut base: Vec<String> = Vec::new();

    for (qid, tree) in queries.iter().enumerate() {
        let schemas = validate(db, tree)?;
        // node -> instr id (None for scans).
        let mut map: HashMap<NodeId, InstrId> = HashMap::new();
        let mut root_instr: Option<InstrId> = None;
        let mut update: Option<UpdateSpec> = None;

        for nid in tree.topo_order() {
            let node = tree.node(nid);
            let operand_of = |child: NodeId| -> OperandSpec {
                let child_node = tree.node(child);
                match &child_node.op {
                    Op::Scan { relation } => OperandSpec {
                        schema: schemas.schema(child).clone(),
                        source: Some(relation.clone()),
                    },
                    _ => OperandSpec {
                        schema: schemas.schema(child).clone(),
                        source: None,
                    },
                }
            };

            let (kernel, operands): (Kernel, Vec<OperandSpec>) = match &node.op {
                Op::Scan { relation } => {
                    base.push(relation.clone());
                    if nid == tree.root() {
                        // Bare scan: an identity instruction so the machine
                        // has something to execute.
                        (
                            Kernel::Identity,
                            vec![OperandSpec {
                                schema: schemas.schema(nid).clone(),
                                source: Some(relation.clone()),
                            }],
                        )
                    } else {
                        continue; // scans feed their parent directly
                    }
                }
                Op::Restrict { predicate } => (
                    Kernel::Restrict(predicate.clone()),
                    vec![operand_of(node.children[0])],
                ),
                Op::Project { projection, dedup } => {
                    let k = if *dedup {
                        Kernel::ProjectDedupFinal(projection.clone())
                    } else {
                        Kernel::Project(projection.clone())
                    };
                    (k, vec![operand_of(node.children[0])])
                }
                Op::Join { condition } => (
                    Kernel::JoinPair(*condition, join_algo),
                    vec![operand_of(node.children[0]), operand_of(node.children[1])],
                ),
                Op::CrossProduct => (
                    Kernel::CrossPair,
                    vec![operand_of(node.children[0]), operand_of(node.children[1])],
                ),
                Op::Union => (
                    Kernel::UnionFinal,
                    vec![operand_of(node.children[0]), operand_of(node.children[1])],
                ),
                Op::Difference => (
                    Kernel::DifferenceFinal,
                    vec![operand_of(node.children[0]), operand_of(node.children[1])],
                ),
                Op::Append { target } => {
                    update = Some(UpdateSpec::Append {
                        target: target.clone(),
                    });
                    (Kernel::Identity, vec![operand_of(node.children[0])])
                }
                Op::Delete { target, predicate } => {
                    update = Some(UpdateSpec::Delete {
                        target: target.clone(),
                    });
                    base.push(target.clone());
                    (
                        Kernel::DeleteFilter(predicate.clone()),
                        vec![OperandSpec {
                            schema: db.require(target)?.schema().clone(),
                            source: Some(target.clone()),
                        }],
                    )
                }
            };

            // Record source scans feeding this instruction.
            for op_spec in &operands {
                if let Some(src) = &op_spec.source {
                    base.push(src.clone());
                }
            }

            let id = instructions.len();
            instructions.push(Instruction {
                id,
                query: qid,
                node: nid,
                kernel,
                op_name: node.op.name(),
                operands,
                output_schema: schemas.schema(nid).clone(),
                parent: None, // fixed up below
            });
            map.insert(nid, id);
            if nid == tree.root() {
                root_instr = Some(id);
            }
        }

        // Fix up parent pointers: for each instruction, find which operand of
        // which parent its node feeds.
        for nid in tree.topo_order() {
            let Some(&iid) = map.get(&nid) else { continue };
            if nid == tree.root() {
                continue;
            }
            // Find the parent node and operand slot.
            let mut assigned = false;
            'outer: for pid in tree.topo_order() {
                let pnode = tree.node(pid);
                for (slot, &c) in pnode.children.iter().enumerate() {
                    if c == nid {
                        let parent_iid = map[&pid];
                        instructions[iid].parent = Some((parent_iid, slot));
                        assigned = true;
                        break 'outer;
                    }
                }
            }
            assert!(assigned, "non-root instruction {iid} has no parent");
        }

        roots.push(root_instr.expect("every tree compiles a root instruction"));
        updates.push(update);
    }

    if transfer == TransferMode::Pipeline {
        fuse_spans(&mut instructions, &mut roots);
    }

    base.sort();
    base.dedup();
    Ok(Program {
        instructions,
        roots,
        updates,
        base_relations: base,
    })
}

/// Collapse every maximal restrict→project→… chain (length ≥ 2) into one
/// [`Kernel::Span`] instruction sitting at the chain bottom's position:
/// same operand, the top's output schema and parent, one step per absorbed
/// operator in chain order. Ids are then renumbered densely and parent
/// pointers and roots remapped.
///
/// Only `Restrict` and `Project` fuse — `DeleteFilter` feeds a database
/// update and `ProjectDedupFinal` blocks, so both stay materialized, as do
/// chains of length 1 (nothing to fuse).
fn fuse_spans(instructions: &mut Vec<Instruction>, roots: &mut [InstrId]) {
    let n = instructions.len();
    let fusible = |i: &Instruction| matches!(i.kernel, Kernel::Restrict(_) | Kernel::Project(_));
    // Which instructions are fed by a fusible child (chain continuation).
    let mut fed_by_fusible = vec![false; n];
    for i in 0..n {
        if fusible(&instructions[i]) {
            if let Some((p, _)) = instructions[i].parent {
                if fusible(&instructions[p]) && instructions[p].query == instructions[i].query {
                    fed_by_fusible[p] = true;
                }
            }
        }
    }

    let mut absorbed = vec![false; n];
    // Maps an absorbed chain top that was a query root to its chain bottom.
    let mut root_redirect: HashMap<InstrId, InstrId> = HashMap::new();
    for bottom in 0..n {
        // A chain bottom is fusible, not itself fed by a fusible child, and
        // feeds a fusible parent in the same query.
        if !fusible(&instructions[bottom]) || fed_by_fusible[bottom] {
            continue;
        }
        let mut chain = vec![bottom];
        loop {
            let cur = *chain.last().expect("chain is non-empty");
            match instructions[cur].parent {
                Some((p, _))
                    if fusible(&instructions[p])
                        && instructions[p].query == instructions[cur].query =>
                {
                    chain.push(p);
                }
                _ => break,
            }
        }
        if chain.len() < 2 {
            continue;
        }
        let steps: Vec<ops::SpanStep> = chain
            .iter()
            .map(|&i| match &instructions[i].kernel {
                Kernel::Restrict(p) => ops::SpanStep::Restrict(p.clone()),
                Kernel::Project(proj) => ops::SpanStep::Project(proj.clone()),
                k => unreachable!("non-fusible kernel {k:?} in a span chain"),
            })
            .collect();
        let top = *chain.last().expect("chain has at least two members");
        instructions[bottom].kernel = Kernel::Span(steps);
        instructions[bottom].op_name = "span";
        instructions[bottom].output_schema = instructions[top].output_schema.clone();
        instructions[bottom].parent = instructions[top].parent;
        if instructions[top].parent.is_none() {
            root_redirect.insert(top, bottom);
        }
        for &i in &chain[1..] {
            absorbed[i] = true;
        }
    }

    if root_redirect.is_empty() && absorbed.iter().all(|&a| !a) {
        return;
    }
    for r in roots.iter_mut() {
        if let Some(&b) = root_redirect.get(r) {
            *r = b;
        }
    }
    // Renumber densely, dropping absorbed instructions.
    let mut remap: Vec<Option<InstrId>> = vec![None; n];
    let mut next = 0;
    for (i, gone) in absorbed.iter().enumerate() {
        if !gone {
            remap[i] = Some(next);
            next += 1;
        }
    }
    let mut i = 0;
    instructions.retain(|_| {
        let keep = !absorbed[i];
        i += 1;
        keep
    });
    for instr in instructions.iter_mut() {
        instr.id = remap[instr.id].expect("kept instruction has a new id");
        instr.parent = instr
            .parent
            .map(|(p, slot)| (remap[p].expect("parent survives fusion"), slot));
    }
    for r in roots.iter_mut() {
        *r = remap[*r].expect("root survives fusion");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_query::{parse_query, TreeBuilder};
    use df_relalg::{CmpOp, DataType, Relation, Tuple, Value};

    fn db() -> Catalog {
        let mut db = Catalog::new();
        let s = Schema::build()
            .attr("k", DataType::Int)
            .attr("v", DataType::Int)
            .finish()
            .unwrap();
        for name in ["a", "b", "c"] {
            db.insert(
                Relation::from_tuples(
                    name,
                    s.clone(),
                    16 + 16 * 4,
                    (0..10).map(|i| Tuple::new(vec![Value::Int(i), Value::Int(i * 2)])),
                )
                .unwrap(),
            )
            .unwrap();
        }
        db
    }

    #[test]
    fn compiles_join_over_restricts() {
        let db = db();
        let q = parse_query(
            &db,
            "(join (restrict (scan a) (> k 2)) (restrict (scan b) (< k 8)) (= k k))",
        )
        .unwrap();
        let prog = compile(&db, &[q]).unwrap();
        assert_eq!(prog.instructions.len(), 3); // 2 restricts + 1 join
        assert_eq!(prog.roots, vec![2]);
        let join = &prog.instructions[2];
        assert!(matches!(join.kernel, Kernel::JoinPair(_, JoinAlgo::Nested)));
        assert_eq!(join.node, NodeId(4)); // scans 0/2, restricts 1/3, join 4
        assert_eq!(join.operands.len(), 2);
        assert!(join.operands[0].source.is_none()); // fed by restrict
        let r0 = &prog.instructions[0];
        assert_eq!(r0.parent, Some((2, 0)));
        assert_eq!(r0.operands[0].source.as_deref(), Some("a"));
        assert_eq!(prog.base_relations, vec!["a", "b"]);
    }

    #[test]
    fn bare_scan_becomes_identity() {
        let db = db();
        let q = parse_query(&db, "(scan a)").unwrap();
        let prog = compile(&db, &[q]).unwrap();
        assert_eq!(prog.instructions.len(), 1);
        assert!(matches!(prog.instructions[0].kernel, Kernel::Identity));
        assert_eq!(
            prog.instructions[0].operands[0].source.as_deref(),
            Some("a")
        );
    }

    #[test]
    fn updates_are_recorded() {
        let db = db();
        let q = parse_query(&db, "(append (scan a) b)").unwrap();
        let prog = compile(&db, &[q]).unwrap();
        assert_eq!(
            prog.updates[0],
            Some(UpdateSpec::Append { target: "b".into() })
        );
        let q = parse_query(&db, "(delete a (> k 5))").unwrap();
        let prog = compile(&db, &[q]).unwrap();
        assert_eq!(
            prog.updates[0],
            Some(UpdateSpec::Delete { target: "a".into() })
        );
        assert!(matches!(
            prog.instructions[0].kernel,
            Kernel::DeleteFilter(_)
        ));
    }

    #[test]
    fn multi_query_batches_share_nothing() {
        let db = db();
        let q1 = parse_query(&db, "(restrict (scan a) (> k 1))").unwrap();
        let q2 = parse_query(&db, "(restrict (scan a) (< k 9))").unwrap();
        let prog = compile(&db, &[q1, q2]).unwrap();
        assert_eq!(prog.instructions.len(), 2);
        assert_eq!(prog.roots, vec![0, 1]);
        assert_eq!(prog.instructions[0].query, 0);
        assert_eq!(prog.instructions[1].query, 1);
        assert_eq!(prog.base_relations, vec!["a"]);
    }

    #[test]
    fn kernel_unit_classes() {
        let db = db();
        let b = TreeBuilder::new(&db);
        let q = b.scan("a").unwrap().project(&["v"], true).unwrap().finish();
        let prog = compile(&db, &[q]).unwrap();
        assert_eq!(
            prog.instructions[0].kernel.unit_gen(),
            UnitGen::WholeRelation
        );
        let q = b
            .scan("a")
            .unwrap()
            .restrict_where("k", CmpOp::Gt, Value::Int(0))
            .unwrap()
            .finish();
        let prog = compile(&db, &[q]).unwrap();
        assert_eq!(prog.instructions[0].kernel.unit_gen(), UnitGen::PerPage);
    }

    #[test]
    fn kernel_run_unit_matches_ops() {
        let db = db();
        let a = db.get("a").unwrap();
        let page = &a.pages()[0];
        let pred = Predicate::cmp_const(a.schema(), "k", CmpOp::Lt, Value::Int(2)).unwrap();
        let out = Kernel::Restrict(pred.clone()).run_unit(&[page]);
        assert_eq!(out, ops::restrict_page(page, &pred));
        let ident = Kernel::Identity.run_unit(&[page]);
        assert_eq!(ident.len(), page.len());
    }

    #[test]
    fn final_kernels_match_set_semantics() {
        let db = db();
        let a = db.get("a").unwrap();
        let pages: Vec<&Page> = a.pages().iter().map(|p| p.as_ref()).collect();
        // a ∪ a = a (set semantics)
        let u = Kernel::UnionFinal.run_final(&[pages.clone(), pages.clone()]);
        assert_eq!(u.len(), 10);
        // a − a = ∅
        let d = Kernel::DifferenceFinal.run_final(&[pages.clone(), pages.clone()]);
        assert!(d.is_empty());
    }

    #[test]
    fn raw_unit_and_final_kernels_match_decoded() {
        let db = db();
        let a = db.get("a").unwrap();
        let s = a.schema().clone();
        let page = &a.pages()[0];
        let other = &a.pages()[1];

        let pred = Predicate::cmp_const(&s, "k", CmpOp::Ge, Value::Int(2)).unwrap();
        for kernel in [
            Kernel::Restrict(pred.clone()),
            Kernel::DeleteFilter(pred),
            Kernel::Project(Projection::new(&s, &["v", "k"]).unwrap()),
            Kernel::Identity,
        ] {
            let out_schema = match &kernel {
                Kernel::Project(p) => p.output_schema(&s).unwrap(),
                _ => s.clone(),
            };
            assert_eq!(
                kernel.run_unit_raw(&[page], &out_schema).to_tuples(),
                kernel.run_unit(&[page]),
                "{kernel:?}"
            );
        }
        let c = JoinCondition::equi(&s, "v", &s, "v").unwrap();
        let joined = s.concat(&s);
        for kernel in [
            Kernel::JoinPair(c, JoinAlgo::Nested),
            Kernel::JoinPair(c, JoinAlgo::Hash),
            Kernel::CrossPair,
        ] {
            assert_eq!(
                kernel.run_unit_raw(&[page, other], &joined).to_tuples(),
                kernel.run_unit(&[page, other]),
                "{kernel:?}"
            );
        }

        let pages: Vec<&Page> = a.pages().iter().map(|p| p.as_ref()).collect();
        let inputs = [pages.clone(), pages];
        let proj_schema = Projection::new(&s, &["v"])
            .unwrap()
            .output_schema(&s)
            .unwrap();
        for kernel in [
            Kernel::UnionFinal,
            Kernel::DifferenceFinal,
            Kernel::ProjectDedupFinal(Projection::new(&s, &["v"]).unwrap()),
        ] {
            let out_schema = match &kernel {
                Kernel::ProjectDedupFinal(_) => proj_schema.clone(),
                _ => s.clone(),
            };
            for buckets in [1u64, 3] {
                for bucket in 0..buckets {
                    assert_eq!(
                        kernel
                            .run_final_bucket_raw(&inputs, bucket, buckets, &out_schema)
                            .to_tuples(),
                        kernel.run_final_bucket(&inputs, bucket, buckets),
                        "{kernel:?} bucket {bucket}/{buckets}"
                    );
                }
            }
        }
    }

    #[test]
    fn tuple_ops_cost_proxy() {
        let pred = Predicate::True;
        assert_eq!(Kernel::Restrict(pred).tuple_ops(&[7]), 7);
        let c = JoinCondition {
            left: 0,
            op: CmpOp::Eq,
            right: 0,
        };
        assert_eq!(Kernel::JoinPair(c, JoinAlgo::Nested).tuple_ops(&[3, 5]), 15);
        // Hash equi-join: build (5 inserts) + probe (3 lookups), not 3×5.
        assert_eq!(Kernel::JoinPair(c, JoinAlgo::Hash).tuple_ops(&[3, 5]), 8);
        // A non-equi θ under Hash degrades to the nested sweep — so does
        // its cost.
        let lt = JoinCondition {
            left: 0,
            op: CmpOp::Lt,
            right: 0,
        };
        assert_eq!(Kernel::JoinPair(lt, JoinAlgo::Hash).tuple_ops(&[3, 5]), 15);
        assert_eq!(Kernel::UnionFinal.tuple_ops(&[3, 5]), 8);
    }

    #[test]
    fn compile_with_sets_join_algo_on_every_join() {
        let db = db();
        let q = parse_query(
            &db,
            "(join (join (scan a) (scan b) (= k k)) (scan c) (= k k))",
        )
        .unwrap();
        let prog = compile_with(
            &db,
            std::slice::from_ref(&q),
            JoinAlgo::Hash,
            TransferMode::default(),
        )
        .unwrap();
        let algos: Vec<JoinAlgo> = prog
            .instructions
            .iter()
            .filter_map(|i| match i.kernel {
                Kernel::JoinPair(_, algo) => Some(algo),
                _ => None,
            })
            .collect();
        assert_eq!(algos, vec![JoinAlgo::Hash, JoinAlgo::Hash]);
        // The plain entry point keeps the paper's default.
        let prog = compile(&db, &[q]).unwrap();
        assert!(prog
            .instructions
            .iter()
            .all(|i| !matches!(i.kernel, Kernel::JoinPair(_, JoinAlgo::Hash))));
    }

    #[test]
    fn pipeline_fuses_restrict_project_chains() {
        let db = db();
        // restrict -> project -> restrict over a scan: one span of 3 steps.
        let q = parse_query(
            &db,
            "(restrict (project (restrict (scan a) (> k 2)) (v)) (< v 16))",
        )
        .unwrap();
        let prog = compile_with(
            &db,
            std::slice::from_ref(&q),
            JoinAlgo::default(),
            TransferMode::Pipeline,
        )
        .unwrap();
        assert_eq!(prog.instructions.len(), 1);
        let span = &prog.instructions[0];
        assert!(matches!(&span.kernel, Kernel::Span(steps) if steps.len() == 3));
        assert_eq!(span.op_name, "span");
        assert_eq!(span.parent, None);
        assert_eq!(span.id, 0);
        assert_eq!(prog.roots, vec![0]);
        assert_eq!(span.operands[0].source.as_deref(), Some("a"));
        // Output schema is the chain top's (just `v`).
        assert_eq!(span.output_schema.arity(), 1);
        assert_eq!(span.output_schema.attrs()[0].name, "v");
        // Span cost = sum of step costs.
        assert_eq!(span.kernel.tuple_ops(&[10]), 30);

        // Materialize mode leaves the chain alone.
        let prog = compile_with(
            &db,
            std::slice::from_ref(&q),
            JoinAlgo::default(),
            TransferMode::Materialize,
        )
        .unwrap();
        assert_eq!(prog.instructions.len(), 3);
    }

    #[test]
    fn pipeline_fuses_below_and_above_joins() {
        let db = db();
        // Two restrict->project legs feeding a join, whose output is then
        // restricted and projected: three chains fuse, the join stays.
        let q = parse_query(
            &db,
            "(project (restrict \
               (join (project (restrict (scan a) (> k 1)) (k v)) \
                     (project (restrict (scan b) (< k 9)) (k v)) \
                     (= k k)) \
               (> v 0)) (v))",
        )
        .unwrap();
        let prog = compile_with(
            &db,
            std::slice::from_ref(&q),
            JoinAlgo::Hash,
            TransferMode::Pipeline,
        )
        .unwrap();
        // 2 leg spans + join + output span.
        assert_eq!(prog.instructions.len(), 4);
        let spans: Vec<_> = prog
            .instructions
            .iter()
            .filter(|i| matches!(i.kernel, Kernel::Span(_)))
            .collect();
        assert_eq!(spans.len(), 3);
        let join = prog
            .instructions
            .iter()
            .find(|i| matches!(i.kernel, Kernel::JoinPair(..)))
            .expect("join survives fusion");
        // The leg spans feed the join's two operand slots.
        let leg_parents: Vec<_> = spans
            .iter()
            .filter_map(|s| s.parent)
            .filter(|(p, _)| *p == join.id)
            .collect();
        assert_eq!(leg_parents.len(), 2);
        assert_ne!(leg_parents[0].1, leg_parents[1].1);
        // The output span is the root.
        let root = &prog.instructions[prog.roots[0]];
        assert!(matches!(&root.kernel, Kernel::Span(steps) if steps.len() == 2));
        // Ids stay dense and children precede parents.
        for (i, instr) in prog.instructions.iter().enumerate() {
            assert_eq!(instr.id, i);
            if let Some((p, _)) = instr.parent {
                assert!(p > i, "child {i} precedes parent {p}");
            }
        }
    }

    /// Fused and unfused programs over the same tree produce identical
    /// results when executed kernel-by-kernel.
    #[test]
    fn span_kernel_matches_unfused_execution() {
        let db = db();
        let q = parse_query(
            &db,
            "(restrict (project (restrict (scan a) (> k 2)) (v)) (< v 16))",
        )
        .unwrap();
        let fused = compile_with(
            &db,
            std::slice::from_ref(&q),
            JoinAlgo::default(),
            TransferMode::Pipeline,
        )
        .unwrap();
        let Kernel::Span(steps) = &fused.instructions[0].kernel else {
            panic!("expected a span");
        };
        let a = db.get("a").unwrap();
        for page in a.pages() {
            let raw = ops::span_page_raw(page, steps, &fused.instructions[0].output_schema);
            assert_eq!(raw.to_tuples(), ops::span_page(page, steps));
            // Unfused reference: restrict, project, restrict by hand.
            let s = a.schema();
            let p1 = Predicate::cmp_const(s, "k", CmpOp::Gt, Value::Int(2)).unwrap();
            let proj = Projection::new(s, &["v"]).unwrap();
            let mid: Vec<Tuple> = ops::restrict_page(page, &p1)
                .iter()
                .map(|t| proj.apply(t).unwrap())
                .collect();
            let out_schema = proj.output_schema(s).unwrap();
            let p2 = Predicate::cmp_const(&out_schema, "v", CmpOp::Lt, Value::Int(16)).unwrap();
            let unfused: Vec<Tuple> = mid.into_iter().filter(|t| p2.eval(t)).collect();
            assert_eq!(raw.to_tuples(), unfused);
        }
    }

    #[test]
    fn hash_join_pair_falls_back_on_non_equi() {
        let db = db();
        let a = db.get("a").unwrap();
        let s = a.schema().clone();
        let page = &a.pages()[0];
        let other = &a.pages()[1];
        let joined = s.concat(&s);
        for op in [CmpOp::Lt, CmpOp::Le, CmpOp::Ne, CmpOp::Gt, CmpOp::Ge] {
            let c = JoinCondition::new(&s, "k", op, &s, "k").unwrap();
            let nested = Kernel::JoinPair(c, JoinAlgo::Nested)
                .run_unit_raw(&[page, other], &joined)
                .to_tuples();
            let hashed = Kernel::JoinPair(c, JoinAlgo::Hash)
                .run_unit_raw(&[page, other], &joined)
                .to_tuples();
            assert_eq!(hashed, nested, "op {op} must degrade to nested loops");
        }
    }
}

//! The simulated DIRECT-like MIMD data-flow machine.
//!
//! Event-driven simulation with a genuine data path: work units carry real
//! pages, instruction processors run real operator kernels, and the clock
//! advances through the [`CostModel`](crate::CostModel). One `Machine`
//! executes one compiled [`Program`] (a batch of query trees) under one
//! [`Granularity`] and one [`AllocationStrategy`].
//!
//! ## Work unit life cycle
//!
//! 1. **Generate** — units appear as operand pages become available
//!    (page/tuple granularity) or all at once when operands complete
//!    (relation granularity gates dispatch on completeness).
//! 2. **Dispatch** — a free memory cell on some processor claims a unit;
//!    operand pages are staged: cache hit → cache-port read; miss → disk
//!    read + cache insert (evicting LRU pages, dirty ones spilling to disk).
//! 3. **Transfer** — the instruction packet crosses the arbitration network;
//!    packet count and bytes depend on the granularity (one packet per page
//!    pair vs. one per *tuple* pair — the §3.3 distinction).
//! 4. **Execute** — the processor runs the kernel; service time is
//!    `bytes/rate + tuples·per_tuple + overhead`.
//! 5. **Emit** — result tuples fill the instruction's output page buffer;
//!    full pages cross the distribution network into the disk cache and are
//!    delivered to the parent instruction's page table (or the query result).

use std::collections::{HashMap, VecDeque};

use df_obs::{IntervalSeries, Path as ObsPath};
use df_query::QueryTree;
use df_relalg::{Catalog, Page, Relation, Result, Tuple, TupleBuf};
use df_sim::stats::ByteCounter;
use df_sim::{Duration, EventQueue, Resource, SimTime};
use df_storage::{DiskCache, MassStorage, PageId, PageStore, PageTable};

use crate::allocation::AllocationStrategy;
use crate::granularity::Granularity;
use crate::instr::{compile_with, InstrId, Program, UnitGen, UpdateSpec};
use crate::metrics::{InstructionStats, Metrics};
use crate::params::MachineParams;

/// One schedulable piece of work for an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WorkUnit {
    /// Apply a streaming unary kernel to one page.
    Single(PageId),
    /// Nested-loops sweep: hold outer page `outer` (an index into the
    /// instruction's outer cursor list) and stream inner pages
    /// `start..start+len` past it. This mirrors the paper's §4.2 join
    /// protocol, where an IP keeps its current outer page while inner pages
    /// are broadcast to it, so the outer page is staged once per sweep
    /// instead of once per page pair.
    Sweep {
        outer: usize,
        start: usize,
        len: usize,
    },
    /// Run one hash bucket of a whole-relation finalizer over all operand
    /// pages (`bucket < MachineParams::dedup_buckets`; with one bucket this
    /// is the serial blocking operator).
    Final { bucket: u64 },
}

/// Simulation events.
#[derive(Debug)]
enum Event {
    /// A processor finished a work unit; `results` were computed at dispatch
    /// (the data path is exact; only the *timing* is simulated). The batch
    /// holds encoded images — the zero-copy path never decodes them.
    UnitDone {
        instr: InstrId,
        proc: usize,
        results: TupleBuf,
    },
    /// A produced page has landed in the cache and is registered with its
    /// consumer (or the query result set for roots).
    PageDelivered {
        instr: InstrId,
        operand: usize,
        page: PageId,
    },
    /// A producer announced it will emit no more pages into this operand.
    StreamComplete { instr: InstrId, operand: usize },
    /// A root instruction's last output page has been delivered.
    QueryDone { query: usize },
}

/// Per-processor scheduling state.
#[derive(Debug, Clone)]
struct Proc {
    busy_until: SimTime,
    free_cells: usize,
}

/// Mutable per-instruction state.
struct InstrState {
    operands: Vec<PageTable>,
    pending: VecDeque<WorkUnit>,
    /// Pairwise kernels only: per outer page, (page, inner pages consumed).
    pair_cursors: Vec<(PageId, usize)>,
    /// Outer indices with unconsumed inner pages, FIFO.
    ready_outers: VecDeque<usize>,
    /// Whether each outer index is currently queued in `ready_outers`.
    outer_queued: Vec<bool>,
    /// Broadcast-join state: when each outer page became resident at its
    /// processor (staged once, held across sweeps). `None` = not yet staged.
    outer_avail: Vec<Option<SimTime>>,
    /// Broadcast-join state: when each inner page was broadcast to the
    /// participating processors. `None` = not yet broadcast.
    inner_avail: Vec<Option<SimTime>>,
    units_generated: u64,
    units_done: u64,
    in_flight: usize,
    out_buffer: Option<Page>,
    final_issued: bool,
    finished: bool,
    last_delivery: SimTime,
    stats: InstructionStats,
}

/// The machine. Construct with [`Machine::new`], run with [`Machine::run`].
pub struct Machine {
    params: MachineParams,
    granularity: Granularity,
    strategy: AllocationStrategy,
    program: Program,

    store: PageStore,
    disk: MassStorage,
    cache: DiskCache,
    net_arb: Resource,
    net_dist: Resource,
    procs: Vec<Proc>,
    /// Time at which each page's latest cache insert completes (a reader at
    /// an earlier instant waits for it).
    page_avail: HashMap<PageId, SimTime>,

    states: Vec<InstrState>,
    depth: Vec<usize>,
    queue: EventQueue<Event>,
    rr_cursor: usize,

    arb_traffic: ByteCounter,
    dist_traffic: ByteCounter,
    arb_series: IntervalSeries,
    dist_series: IntervalSeries,
    proc_busy: Duration,
    units_dispatched: u64,
    query_completions: Vec<Option<SimTime>>,
    results: Vec<Vec<PageId>>,
}

impl Machine {
    /// Compile `queries` against `db` and build a machine.
    ///
    /// # Errors
    /// Propagates query validation errors.
    pub fn new(
        db: &Catalog,
        queries: &[QueryTree],
        params: MachineParams,
        granularity: Granularity,
        strategy: AllocationStrategy,
    ) -> Result<Machine> {
        params.validate();
        let program = compile_with(db, queries, params.join_algo, params.transfer)?;
        // Every instruction's output page must hold at least one tuple.
        for instr in &program.instructions {
            Page::new(instr.output_schema.clone(), params.page_size)?;
        }

        let mut store = PageStore::new();
        let mut disk = MassStorage::new(params.disk.clone());
        // Load every referenced base relation onto mass storage once.
        let mut base_pages: HashMap<String, Vec<PageId>> = HashMap::new();
        for name in &program.base_relations {
            let rel = db.require(name)?;
            let ids = store.load_relation(rel);
            for &id in &ids {
                disk.preload(id);
            }
            base_pages.insert(name.clone(), ids);
        }

        // Depth from root per instruction (for the RootFirst strategy).
        let mut depth = vec![0usize; program.instructions.len()];
        for instr in program.instructions.iter().rev() {
            if let Some((parent, _)) = instr.parent {
                depth[instr.id] = depth[parent] + 1;
            }
        }

        // Initial operand tables: sources complete, intermediates empty.
        let mut states: Vec<InstrState> = program
            .instructions
            .iter()
            .map(|instr| InstrState {
                operands: instr
                    .operands
                    .iter()
                    .map(|o| PageTable::new(o.schema.clone()))
                    .collect(),
                pending: VecDeque::new(),
                pair_cursors: Vec::new(),
                ready_outers: VecDeque::new(),
                outer_queued: Vec::new(),
                outer_avail: Vec::new(),
                inner_avail: Vec::new(),
                units_generated: 0,
                units_done: 0,
                in_flight: 0,
                out_buffer: None,
                final_issued: false,
                finished: false,
                last_delivery: SimTime::ZERO,
                stats: InstructionStats {
                    op_name: instr.op_name,
                    query: instr.query,
                    ..InstructionStats::default()
                },
            })
            .collect();

        let n_queries = program.roots.len();
        let processors = params.processors;
        let channels = params.net_channels();
        let cache = DiskCache::new(params.cache.clone());
        let mut machine = Machine {
            granularity,
            strategy,
            store,
            disk,
            cache,
            net_arb: Resource::new("arbitration-net", channels),
            net_dist: Resource::new("distribution-net", channels),
            procs: vec![
                Proc {
                    busy_until: SimTime::ZERO,
                    free_cells: params.cells_per_processor,
                };
                processors
            ],
            page_avail: HashMap::new(),
            states: Vec::new(),
            depth,
            queue: EventQueue::new(),
            rr_cursor: 0,
            arb_traffic: ByteCounter::new(),
            dist_traffic: ByteCounter::new(),
            arb_series: IntervalSeries::default(),
            dist_series: IntervalSeries::default(),
            proc_busy: Duration::ZERO,
            units_dispatched: 0,
            query_completions: vec![None; n_queries],
            results: vec![Vec::new(); n_queries],
            params,
            program,
        };

        // Feed source pages through the normal delivery path at t = 0, then
        // mark those streams complete. This generates the initial work units
        // with exactly the same code as runtime deliveries.
        std::mem::swap(&mut machine.states, &mut states);
        drop(states);
        for iid in 0..machine.program.instructions.len() {
            for slot in 0..machine.program.instructions[iid].operands.len() {
                if let Some(src) = machine.program.instructions[iid].operands[slot]
                    .source
                    .clone()
                {
                    let pages = base_pages[&src].clone();
                    for pid in pages {
                        machine.register_page(iid, slot, pid);
                    }
                    machine.complete_stream(iid, slot);
                }
            }
        }
        Ok(machine)
    }

    /// The granularity this machine runs at.
    pub fn granularity(&self) -> Granularity {
        self.granularity
    }

    /// Run to completion, returning per-query result relations and metrics.
    ///
    /// # Panics
    /// Panics if the simulation wedges (no events pending but instructions
    /// unfinished) — an internal scheduling bug, not a user condition.
    pub fn run(mut self) -> (Vec<Relation>, Metrics) {
        self.dispatch_ready();
        while let Some((now, event)) = self.queue.pop() {
            match event {
                Event::UnitDone {
                    instr,
                    proc,
                    results,
                } => self.on_unit_done(now, instr, proc, results),
                Event::PageDelivered {
                    instr,
                    operand,
                    page,
                } => {
                    self.register_page(instr, operand, page);
                    self.states[instr].last_delivery = now;
                }
                Event::StreamComplete { instr, operand } => {
                    self.complete_stream(instr, operand);
                }
                Event::QueryDone { query } => {
                    self.query_completions[query] = Some(now);
                }
            }
            self.dispatch_ready();
        }

        for (iid, st) in self.states.iter().enumerate() {
            assert!(
                st.finished,
                "simulation wedged: instruction {iid} ({}) unfinished \
                 ({} pending, {} in flight, {}/{} units)",
                self.program.instructions[iid].op_name,
                st.pending.len(),
                st.in_flight,
                st.units_done,
                st.units_generated,
            );
        }

        self.finalize()
    }

    // ------------------------------------------------------------ delivery

    /// Register a page in an instruction's operand table and derive new
    /// work units from it.
    fn register_page(&mut self, iid: InstrId, slot: usize, page: PageId) {
        self.states[iid].operands[slot].push(page);
        let kernel = &self.program.instructions[iid].kernel;
        match kernel.unit_gen() {
            UnitGen::PerPage => {
                self.states[iid].pending.push_back(WorkUnit::Single(page));
                self.states[iid].units_generated += 1;
            }
            UnitGen::PerPair => {
                let st = &mut self.states[iid];
                if slot == 0 {
                    // New outer page: it has work iff inner pages exist.
                    let idx = st.pair_cursors.len();
                    st.pair_cursors.push((page, 0));
                    st.outer_queued.push(false);
                    st.outer_avail.push(None);
                    if !st.operands[1].is_empty() {
                        st.ready_outers.push_back(idx);
                        st.outer_queued[idx] = true;
                    }
                } else {
                    st.inner_avail.push(None);
                    // New inner page: every outer behind the new length has
                    // work again.
                    let inner_len = st.operands[1].len();
                    for idx in 0..st.pair_cursors.len() {
                        if !st.outer_queued[idx] && st.pair_cursors[idx].1 < inner_len {
                            st.ready_outers.push_back(idx);
                            st.outer_queued[idx] = true;
                        }
                    }
                }
            }
            UnitGen::WholeRelation => {} // waits for completeness
        }
    }

    /// Mark one operand stream complete; issue finalizer units and check
    /// for (possibly zero-work) completion.
    fn complete_stream(&mut self, iid: InstrId, slot: usize) {
        self.states[iid].operands[slot].mark_complete();
        let kernel = &self.program.instructions[iid].kernel;
        if kernel.unit_gen() == UnitGen::WholeRelation
            && !self.states[iid].final_issued
            && self.states[iid].operands.iter().all(PageTable::is_complete)
        {
            self.states[iid].final_issued = true;
            // §5 extension: hash-partition the blocking operator into
            // parallel bucket units (1 bucket = the paper's serial case).
            let buckets = self.params.dedup_buckets.max(1) as u64;
            for bucket in 0..buckets {
                self.states[iid]
                    .pending
                    .push_back(WorkUnit::Final { bucket });
                self.states[iid].units_generated += 1;
            }
        }
        self.check_completion(iid);
    }

    // ------------------------------------------------------------ dispatch

    /// Whether `iid` may fire units under the configured granularity.
    fn instr_ready(&self, iid: InstrId) -> bool {
        match self.granularity {
            // §3.1: enabled only when every source operand is complete.
            Granularity::Relation => self.states[iid].operands.iter().all(PageTable::is_complete),
            // §3.2/§3.3: a queued unit means ≥1 page of each operand exists.
            Granularity::Page | Granularity::Tuple => true,
        }
    }

    /// Dispatch as many (unit, processor) pairs as possible.
    fn dispatch_ready(&mut self) {
        // Processor with a free memory cell, earliest-free first.
        while let Some(pid) = self
            .procs
            .iter()
            .enumerate()
            .filter(|(_, p)| p.free_cells > 0)
            .min_by_key(|(i, p)| (p.busy_until, *i))
            .map(|(i, _)| i)
        {
            // Instructions with ready work.
            let candidates: Vec<(usize, usize, usize)> = self
                .states
                .iter()
                .enumerate()
                .filter(|(iid, st)| {
                    !st.finished
                        && (!st.pending.is_empty() || !st.ready_outers.is_empty())
                        && self.instr_ready(*iid)
                })
                .map(|(iid, st)| (iid, st.in_flight, self.depth[iid]))
                .collect();
            if candidates.is_empty() {
                break;
            }
            let iid = self.strategy.choose(&candidates, &mut self.rr_cursor);
            let unit = self.next_unit(iid);
            self.dispatch_unit(pid, iid, unit);
        }
    }

    /// Take the next work unit for `iid`: an explicit pending unit, or a
    /// synthesized nested-loops sweep (lazy generation lets consecutive
    /// inner-page arrivals coalesce into one sweep, like the §4.2 IP that
    /// keeps its outer page while inner pages stream past).
    fn next_unit(&mut self, iid: InstrId) -> WorkUnit {
        if let Some(unit) = self.states[iid].pending.pop_front() {
            return unit;
        }
        let max_batch = self.params.max_inner_batch.max(1);
        let st = &mut self.states[iid];
        let outer = st
            .ready_outers
            .pop_front()
            .expect("candidate instruction has pair work");
        st.outer_queued[outer] = false;
        let inner_len = st.operands[1].len();
        let cursor = st.pair_cursors[outer].1;
        debug_assert!(cursor < inner_len, "queued outer has no inner work");
        let len = (inner_len - cursor).min(max_batch);
        st.pair_cursors[outer].1 = cursor + len;
        if st.pair_cursors[outer].1 < inner_len {
            st.ready_outers.push_back(outer);
            st.outer_queued[outer] = true;
        }
        st.units_generated += 1;
        WorkUnit::Sweep {
            outer,
            start: cursor,
            len,
        }
    }

    /// Stage operand pages, charge network + processor time, execute the
    /// kernel, and schedule completion.
    fn dispatch_unit(&mut self, pid: usize, iid: InstrId, unit: WorkUnit) {
        let now = self.queue.now();
        self.units_dispatched += 1;
        self.states[iid].in_flight += 1;
        if self.states[iid].stats.first_fire.is_none() {
            self.states[iid].stats.first_fire = Some(now);
        }

        // 1. Stage operand pages (cache hit / disk fetch). A hash-
        // partitioned finalizer bucket receives only its 1/B share of the
        // input stream (producers route tuples by hash), modelled as every
        // B-th page; the kernel still *reads* the full input from the page
        // store so the data path stays exact.
        let operand_pages: Vec<PageId> = match unit {
            WorkUnit::Single(p) => vec![p],
            WorkUnit::Sweep { outer, start, len } => {
                let st = &self.states[iid];
                let mut v = Vec::with_capacity(1 + len);
                v.push(st.pair_cursors[outer].0);
                v.extend_from_slice(&st.operands[1].pages()[start..start + len]);
                v
            }
            WorkUnit::Final { bucket } => {
                let buckets = self.params.dedup_buckets.max(1);
                self.states[iid]
                    .operands
                    .iter()
                    .flat_map(|t| t.pages().iter().copied())
                    .enumerate()
                    .filter(|(i, _)| i % buckets == bucket as usize)
                    .map(|(_, p)| p)
                    .collect()
            }
        };
        // Broadcast joins (requirement 4, §4.0): each sweep operand page is
        // staged out of the hierarchy once and then held at the processors,
        // so re-uses cost nothing and cross no network. Tuple-level
        // granularity never broadcasts (§3.3 charges every pair).
        let broadcast = matches!(unit, WorkUnit::Sweep { .. })
            && self.params.broadcast_join
            && self.granularity != Granularity::Tuple;
        let mut data_ready = now;
        // Pages that cross the arbitration network for this unit.
        let mut net_pages: Vec<PageId> = Vec::new();
        if broadcast {
            let WorkUnit::Sweep { outer, start, len } = unit else {
                unreachable!("broadcast only set for sweeps")
            };
            let outer_page = self.states[iid].pair_cursors[outer].0;
            match self.states[iid].outer_avail[outer] {
                Some(t) => data_ready = data_ready.max(t),
                None => {
                    let t = self.stage_page(now, outer_page);
                    self.retire_if_intermediate(iid, 0, outer_page);
                    self.states[iid].outer_avail[outer] = Some(t);
                    net_pages.push(outer_page);
                    data_ready = data_ready.max(t);
                }
            }
            for i in start..start + len {
                let inner_page = self.states[iid].operands[1].pages()[i];
                match self.states[iid].inner_avail[i] {
                    Some(t) => data_ready = data_ready.max(t),
                    None => {
                        let t = self.stage_page(now, inner_page);
                        self.retire_if_intermediate(iid, 1, inner_page);
                        self.states[iid].inner_avail[i] = Some(t);
                        net_pages.push(inner_page);
                        data_ready = data_ready.max(t);
                    }
                }
            }
        } else {
            for &pid_ in &operand_pages {
                let t = self.stage_page(now, pid_);
                data_ready = data_ready.max(t);
                net_pages.push(pid_);
            }
            // A streaming unary unit consumes its page exactly once:
            // reclaim intermediate pages immediately.
            if let WorkUnit::Single(p) = unit {
                self.retire_if_intermediate(iid, 0, p);
            }
        }

        // 2. Gather sizes for accounting. For sweeps the inner pages are
        // collapsed into one logical operand (n outer tuples vs m total
        // inner tuples), which is exactly what the §3.3 tuple-level formula
        // n·m·(200+c) needs.
        let page_tuples: Vec<usize> = operand_pages
            .iter()
            .map(|&p| self.store.get(p).len())
            .collect();
        let page_widths: Vec<usize> = operand_pages
            .iter()
            .map(|&p| self.store.get(p).schema().tuple_width())
            .collect();
        let (tuple_counts, tuple_widths): (Vec<usize>, Vec<usize>) = match unit {
            WorkUnit::Single(_) => (page_tuples.clone(), page_widths.clone()),
            WorkUnit::Sweep { .. } => (
                vec![page_tuples[0], page_tuples[1..].iter().sum()],
                vec![page_widths[0], page_widths.get(1).copied().unwrap_or(0)],
            ),
            WorkUnit::Final { .. } => (page_tuples.clone(), page_widths.clone()),
        };
        let payload: usize = operand_pages
            .iter()
            .map(|&p| self.store.get(p).wire_bytes())
            .sum();

        // 3. Arbitration-network transfer.
        let kernel = self.program.instructions[iid].kernel.clone();
        let (packets, pkt_payload) = match (unit, kernel.unit_gen()) {
            // Finalizers always ship whole pages (one packet per page):
            // tuple-level accounting is defined for the paper's streaming
            // and join packets, not for blocking set operators.
            (WorkUnit::Final { .. }, _) => (operand_pages.len().max(1), payload),
            _ if broadcast => {
                let staged_bytes: usize = net_pages
                    .iter()
                    .map(|&p| self.store.get(p).wire_bytes())
                    .sum();
                (net_pages.len(), staged_bytes)
            }
            _ => self.granularity.unit_packets(
                &tuple_counts,
                &tuple_widths,
                operand_pages.len(),
                payload,
            ),
        };
        let net_done = if packets == 0 {
            data_ready // everything already resident at the processors
        } else {
            let wire_bytes = pkt_payload + packets * self.params.packet_overhead;
            self.arb_traffic.bytes += wire_bytes as u64;
            self.arb_traffic.transfers += packets as u64;
            self.observe(data_ready, ObsPath::Arbitration, wire_bytes);
            let net_service = self.params.cost.net_time(wire_bytes, packets);
            let (_, done) = self.net_arb.submit(data_ready, net_service);
            done
        };

        // 4. Execute the kernel now (exact data path, zero-copy: images are
        // compared and memcpy'd, never decoded), schedule the timing.
        let out_schema = self.program.instructions[iid].output_schema.clone();
        let pages: Vec<&Page> = operand_pages.iter().map(|&p| self.store.get(p)).collect();
        let results = match unit {
            WorkUnit::Final { bucket } => {
                // The kernel reads the *complete* inputs from the store
                // (the bucket filter selects its share of the tuples).
                let inputs: Vec<Vec<&Page>> = self.states[iid]
                    .operands
                    .iter()
                    .map(|t| t.pages().iter().map(|&p| self.store.get(p)).collect())
                    .collect();
                let buckets = self.params.dedup_buckets.max(1) as u64;
                kernel.run_final_bucket_raw(&inputs, bucket, buckets, &out_schema)
            }
            WorkUnit::Sweep { .. } => {
                let outer = pages[0];
                let mut out = TupleBuf::new(out_schema.clone());
                for inner in &pages[1..] {
                    out.append(&kernel.run_unit_raw(&[outer, inner], &out_schema));
                }
                out
            }
            WorkUnit::Single(_) => kernel.run_unit_raw(&pages, &out_schema),
        };

        let tuple_ops = kernel.tuple_ops(&tuple_counts);
        let service = self.params.cost.compute_time(payload, tuple_ops);
        let proc = &mut self.procs[pid];
        let start = net_done.max(proc.busy_until);
        let done = start + service;
        proc.busy_until = done;
        proc.free_cells -= 1;
        self.proc_busy += service;

        self.queue.schedule(
            done,
            Event::UnitDone {
                instr: iid,
                proc: pid,
                results,
            },
        );
    }

    /// Make a page readable by a processor at or after `now`; returns when
    /// its bytes are available. Cache hit → port read. Miss → disk read,
    /// then cache insert (possibly spilling dirty LRU pages to disk).
    fn stage_page(&mut self, now: SimTime, page: PageId) -> SimTime {
        let bytes = self.store.wire_bytes(page);
        if self.cache.contains(page) {
            let earliest = self
                .page_avail
                .get(&page)
                .copied()
                .unwrap_or(SimTime::ZERO)
                .max(now);
            let (_, done) = self.cache.read(earliest, page);
            done
        } else {
            debug_assert!(self.disk.contains(page), "page neither cached nor on disk");
            let (_, read_done) = self.disk.read(now, page, bytes);
            let (_, ins_done, evicted) = self.cache.insert(read_done, 0, page, bytes);
            self.page_avail.insert(page, ins_done);
            self.spill(ins_done, &evicted);
            ins_done
        }
    }

    /// Drop a fully consumed *intermediate* page from the cache and disk
    /// (its contents remain in the page store for the exact data path).
    /// Base-relation pages are left alone: they are clean, stay on disk,
    /// and evicting them costs nothing.
    fn retire_if_intermediate(&mut self, iid: InstrId, slot: usize, page: PageId) {
        if self.program.instructions[iid].operands[slot]
            .source
            .is_none()
        {
            self.cache.discard(page);
            self.disk.discard(page);
            self.page_avail.remove(&page);
        }
    }

    /// Write evicted dirty pages (not disk-resident) back to mass storage.
    fn spill(&mut self, now: SimTime, evicted: &[PageId]) {
        for &victim in evicted {
            self.page_avail.remove(&victim);
            if !self.disk.contains(victim) {
                let bytes = self.store.wire_bytes(victim);
                self.disk.write(now, victim, bytes);
            }
        }
    }

    // ---------------------------------------------------------- completion

    fn on_unit_done(&mut self, now: SimTime, iid: InstrId, pid: usize, mut results: TupleBuf) {
        self.procs[pid].free_cells += 1;
        {
            let st = &mut self.states[iid];
            st.in_flight -= 1;
            st.units_done += 1;
            st.stats.units += 1;
            st.stats.tuples_out += results.len() as u64;
        }
        // Drain result images into the output buffer; emit full pages.
        // Each drain is one memcpy of whole images — no tuple is decoded.
        while !results.is_empty() {
            let page_size = self.params.page_size;
            let schema = self.program.instructions[iid].output_schema.clone();
            let buf = self.states[iid].out_buffer.get_or_insert_with(|| {
                Page::new(schema, page_size).expect("output page size validated")
            });
            results.drain_into(buf);
            if buf.is_full() {
                let full = self.states[iid].out_buffer.take().expect("just filled");
                self.emit_page(now, iid, full);
            }
        }
        self.check_completion(iid);
    }

    /// Record a network transfer into the per-interval demand series and,
    /// when a tracer is installed, into its per-path counters — both stamped
    /// with *simulated* time, so traced totals equal the [`ByteCounter`]s
    /// exactly.
    fn observe(&mut self, now: SimTime, path: ObsPath, bytes: usize) {
        let t = now.as_nanos();
        let series = match path {
            ObsPath::Arbitration => &mut self.arb_series,
            ObsPath::Distribution => &mut self.dist_series,
            _ => return,
        };
        series.record(t, bytes as u64);
        if let Some(tr) = self.params.trace.as_deref() {
            tr.transfer_at(t, path, u32::MAX, bytes as u64);
        }
    }

    /// Ship a produced page through the distribution network into the cache
    /// and deliver it to the parent (or the query result set).
    fn emit_page(&mut self, now: SimTime, iid: InstrId, page: Page) {
        let tuples = page.len();
        let width = page.schema().tuple_width();
        let bytes = page.wire_bytes();
        let pid = self.store.put(page);
        self.states[iid].stats.pages_out += 1;

        let (packets, payload) = match self.granularity {
            Granularity::Relation | Granularity::Page => (1, bytes),
            Granularity::Tuple => (tuples.max(1), tuples * width),
        };
        let wire = payload + packets * self.params.packet_overhead;
        self.dist_traffic.bytes += wire as u64;
        self.dist_traffic.transfers += packets as u64;
        self.observe(now, ObsPath::Distribution, wire);
        let (_, net_done) = self
            .net_dist
            .submit(now, self.params.cost.net_time(wire, packets));

        let (_, ins_done, evicted) = self.cache.insert(net_done, 0, pid, bytes);
        self.page_avail.insert(pid, ins_done);
        self.spill(ins_done, &evicted);

        match self.program.instructions[iid].parent {
            Some((parent, slot)) => {
                self.queue.schedule(
                    ins_done,
                    Event::PageDelivered {
                        instr: parent,
                        operand: slot,
                        page: pid,
                    },
                );
            }
            None => {
                let q = self.program.instructions[iid].query;
                self.results[q].push(pid);
            }
        }
        self.states[iid].last_delivery = self.states[iid].last_delivery.max(ins_done);
    }

    /// If `iid` has no more work coming, flush its output and propagate
    /// completion downstream.
    fn check_completion(&mut self, iid: InstrId) {
        let st = &self.states[iid];
        if st.finished {
            return;
        }
        let operands_done = st.operands.iter().all(PageTable::is_complete);
        let pairs_done = st.ready_outers.is_empty()
            && st
                .pair_cursors
                .iter()
                .all(|&(_, cursor)| cursor == st.operands.get(1).map_or(0, PageTable::len));
        let units_done = st.pending.is_empty()
            && pairs_done
            && st.in_flight == 0
            && st.units_done == st.units_generated;
        let final_ok = self.program.instructions[iid].kernel.unit_gen() != UnitGen::WholeRelation
            || st.final_issued;
        if !(operands_done && units_done && final_ok) {
            return;
        }

        let now = self.queue.now();
        // Flush the partial output page, if any.
        if let Some(partial) = self.states[iid].out_buffer.take() {
            if !partial.is_empty() {
                self.emit_page(now, iid, partial);
            }
        }
        self.states[iid].finished = true;
        self.states[iid].stats.completed = Some(now);

        // Reclaim intermediate operand pages: they will never be read again.
        let intermediates: Vec<PageId> = self.program.instructions[iid]
            .operands
            .iter()
            .zip(&self.states[iid].operands)
            .filter(|(spec, _)| spec.source.is_none())
            .flat_map(|(_, table)| table.pages().iter().copied())
            .collect();
        for p in intermediates {
            self.cache.discard(p);
            self.disk.discard(p);
            self.page_avail.remove(&p);
        }

        let after_delivery = self.states[iid].last_delivery.max(now);
        match self.program.instructions[iid].parent {
            Some((parent, slot)) => {
                self.queue.schedule(
                    after_delivery,
                    Event::StreamComplete {
                        instr: parent,
                        operand: slot,
                    },
                );
            }
            None => {
                let q = self.program.instructions[iid].query;
                self.queue
                    .schedule(after_delivery, Event::QueryDone { query: q });
            }
        }
    }

    // ------------------------------------------------------------ wrap-up

    fn finalize(self) -> (Vec<Relation>, Metrics) {
        let elapsed = self
            .query_completions
            .iter()
            .map(|t| t.expect("all queries completed"))
            .max()
            .unwrap_or(SimTime::ZERO);

        let relations: Vec<Relation> = self
            .program
            .roots
            .iter()
            .enumerate()
            .map(|(q, &root)| {
                let schema = self.program.instructions[root].output_schema.clone();
                self.store
                    .materialize(
                        &format!("q{q}_result"),
                        schema,
                        self.params.page_size,
                        &self.results[q],
                    )
                    .expect("result pages conform to the root schema")
            })
            .collect();

        let mut disk_read = ByteCounter::new();
        disk_read.merge(&self.disk.read_traffic);
        let mut disk_write = ByteCounter::new();
        disk_write.merge(&self.disk.write_traffic);
        let mut cache_in = ByteCounter::new();
        cache_in.merge(&self.cache.in_traffic);
        let mut cache_out = ByteCounter::new();
        cache_out.merge(&self.cache.out_traffic);

        let metrics = Metrics {
            elapsed,
            arbitration: self.arb_traffic,
            distribution: self.dist_traffic,
            disk_read,
            disk_write,
            cache_in,
            cache_out,
            proc_busy: self.proc_busy,
            processors: self.params.processors,
            units_dispatched: self.units_dispatched,
            query_completions: self
                .query_completions
                .iter()
                .map(|t| t.expect("all queries completed"))
                .collect(),
            instructions: self.states.iter().map(|s| s.stats.clone()).collect(),
            arbitration_series: self.arb_series.clone(),
            distribution_series: self.dist_series.clone(),
        };
        (relations, metrics)
    }

    /// Post-run database update for update queries (append/delete).
    ///
    /// `results` must be the relations returned by [`Machine::run`] for the
    /// same program.
    pub fn apply_updates(
        db: &mut Catalog,
        program_updates: &[Option<UpdateSpec>],
        results: &[Relation],
    ) -> Result<()> {
        for (update, result) in program_updates.iter().zip(results) {
            match update {
                None => {}
                Some(UpdateSpec::Append { target }) => {
                    let rel =
                        db.get_mut(target)
                            .ok_or_else(|| df_relalg::Error::UnknownRelation {
                                name: target.clone(),
                            })?;
                    for t in result.tuples() {
                        rel.append(t)?;
                    }
                }
                Some(UpdateSpec::Delete { target }) => {
                    let rel = db.require(target)?;
                    // Remove result tuples (multiset subtraction).
                    let mut to_remove: Vec<Tuple> = result.tuples().collect();
                    let kept: Vec<Tuple> = rel
                        .tuples()
                        .filter(|t| {
                            if let Some(pos) = to_remove.iter().position(|r| r == t) {
                                to_remove.swap_remove(pos);
                                false
                            } else {
                                true
                            }
                        })
                        .collect();
                    let rebuilt =
                        Relation::from_tuples(target, rel.schema().clone(), rel.page_size(), kept)?;
                    db.insert_or_replace(rebuilt);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::compile;
    use crate::params::JoinAlgo;
    use df_query::{execute_readonly, parse_query, ExecParams};
    use df_relalg::{DataType, Schema, Value};

    fn db() -> Catalog {
        let mut db = Catalog::new();
        let s = Schema::build()
            .attr("k", DataType::Int)
            .attr("v", DataType::Int)
            .finish()
            .unwrap();
        for (name, n) in [("a", 30i64), ("b", 20i64)] {
            db.insert(
                Relation::from_tuples(
                    name,
                    s.clone(),
                    16 + 16 * 4, // 4 tuples per page
                    (0..n).map(|i| Tuple::new(vec![Value::Int(i), Value::Int(i % 5)])),
                )
                .unwrap(),
            )
            .unwrap();
        }
        db
    }

    fn small_params() -> MachineParams {
        let mut p = MachineParams::with_processors(4);
        p.page_size = 16 + 16 * 4;
        p.cache.frames = 16;
        p
    }

    fn run_one(db: &Catalog, q: &str, g: Granularity) -> (Relation, Metrics) {
        let tree = parse_query(db, q).unwrap();
        let m = Machine::new(
            db,
            &[tree],
            small_params(),
            g,
            AllocationStrategy::default(),
        )
        .unwrap();
        let (mut rels, metrics) = m.run();
        (rels.remove(0), metrics)
    }

    #[test]
    fn restrict_matches_oracle_at_all_granularities() {
        let db = db();
        let q = "(restrict (scan a) (> k 10))";
        let oracle =
            execute_readonly(&db, &parse_query(&db, q).unwrap(), &ExecParams::default()).unwrap();
        for g in Granularity::ALL {
            let (out, m) = run_one(&db, q, g);
            assert!(out.same_contents(&oracle), "granularity {g}");
            assert!(m.elapsed > SimTime::ZERO);
            assert_eq!(m.units_dispatched, 8); // 30 tuples / 4 per page
        }
    }

    #[test]
    fn join_matches_oracle_at_all_granularities() {
        let db = db();
        let q = "(join (restrict (scan a) (< k 20)) (scan b) (= v k))";
        let oracle =
            execute_readonly(&db, &parse_query(&db, q).unwrap(), &ExecParams::default()).unwrap();
        assert!(oracle.num_tuples() > 0);
        for g in Granularity::ALL {
            let (out, _) = run_one(&db, q, g);
            assert!(out.same_contents(&oracle), "granularity {g}");
        }
    }

    #[test]
    fn hash_join_algo_matches_nested_and_is_cheaper() {
        let db = db();
        let q = "(join (restrict (scan a) (< k 20)) (scan b) (= v k))";
        let tree = parse_query(&db, q).unwrap();
        let run = |algo: JoinAlgo| {
            let mut p = small_params();
            p.join_algo = algo;
            let m = Machine::new(
                &db,
                std::slice::from_ref(&tree),
                p,
                Granularity::Page,
                AllocationStrategy::default(),
            )
            .unwrap();
            let (mut results, metrics) = m.run();
            (results.remove(0), metrics)
        };
        let (nested, nm) = run(JoinAlgo::Nested);
        let (hashed, hm) = run(JoinAlgo::Hash);
        assert!(hashed.same_contents(&nested), "hash path changed results");
        assert!(
            hm.elapsed <= nm.elapsed,
            "probe units should not cost more simulated time: hash {} vs nested {}",
            hm.elapsed,
            nm.elapsed
        );
    }

    #[test]
    fn non_equi_join_under_hash_algo_matches_oracle() {
        let db = db();
        let q = "(join (restrict (scan a) (< k 6)) (restrict (scan b) (< k 4)) (< v k))";
        let tree = parse_query(&db, q).unwrap();
        let oracle = execute_readonly(&db, &tree, &ExecParams::default()).unwrap();
        let mut p = small_params();
        p.join_algo = JoinAlgo::Hash;
        let m = Machine::new(
            &db,
            std::slice::from_ref(&tree),
            p,
            Granularity::Page,
            AllocationStrategy::default(),
        )
        .unwrap();
        let (mut results, _) = m.run();
        assert!(
            results.remove(0).same_contents(&oracle),
            "θ-join must silently degrade to nested loops"
        );
    }

    #[test]
    fn blocking_ops_match_oracle() {
        let db = db();
        for q in [
            "(project-distinct (scan a) (v))",
            "(union (restrict (scan a) (< k 9)) (restrict (scan a) (> k 3)))",
            "(difference (scan a) (restrict (scan a) (< k 25)))",
        ] {
            let oracle =
                execute_readonly(&db, &parse_query(&db, q).unwrap(), &ExecParams::default())
                    .unwrap();
            let (out, _) = run_one(&db, q, Granularity::Page);
            assert!(out.same_contents(&oracle), "query {q}");
        }
    }

    #[test]
    fn page_level_beats_relation_level_on_pipelines() {
        // A two-stage pipeline (restrict feeding a join) under cache
        // pressure: page level must not be slower.
        let db = db();
        let q = "(join (restrict (scan a) (< k 25)) (restrict (scan b) (> k 2)) (= v k))";
        let (_, rel) = run_one(&db, q, Granularity::Relation);
        let (_, page) = run_one(&db, q, Granularity::Page);
        assert!(
            page.elapsed <= rel.elapsed,
            "page {} vs relation {}",
            page.elapsed,
            rel.elapsed
        );
    }

    #[test]
    fn tuple_level_floods_the_network() {
        let db = db();
        let q = "(join (scan a) (scan b) (= v k))";
        let (_, page) = run_one(&db, q, Granularity::Page);
        let (_, tuple) = run_one(&db, q, Granularity::Tuple);
        assert!(
            tuple.arbitration.bytes > 3 * page.arbitration.bytes,
            "tuple {} vs page {}",
            tuple.arbitration.bytes,
            page.arbitration.bytes
        );
        assert!(tuple.arbitration.transfers > page.arbitration.transfers);
    }

    #[test]
    fn deterministic_metrics() {
        let db = db();
        let q = "(join (scan a) (scan b) (= v k))";
        let (r1, m1) = run_one(&db, q, Granularity::Page);
        let (r2, m2) = run_one(&db, q, Granularity::Page);
        assert_eq!(m1.elapsed, m2.elapsed);
        assert_eq!(m1.arbitration.bytes, m2.arbitration.bytes);
        assert_eq!(m1.units_dispatched, m2.units_dispatched);
        assert!(r1.same_contents(&r2));
    }

    #[test]
    fn multi_query_batch_completes_each_query() {
        let db = db();
        let q1 = parse_query(&db, "(restrict (scan a) (> k 5))").unwrap();
        let q2 = parse_query(&db, "(restrict (scan b) (< k 5))").unwrap();
        let m = Machine::new(
            &db,
            &[q1, q2],
            small_params(),
            Granularity::Page,
            AllocationStrategy::default(),
        )
        .unwrap();
        let (rels, metrics) = m.run();
        assert_eq!(rels.len(), 2);
        assert_eq!(rels[0].num_tuples(), 24);
        assert_eq!(rels[1].num_tuples(), 5);
        assert_eq!(metrics.query_completions.len(), 2);
    }

    #[test]
    fn more_processors_never_slower() {
        let db = db();
        let q = "(join (scan a) (scan b) (= v k))";
        let tree = parse_query(&db, q).unwrap();
        let mut last = None;
        for procs in [1usize, 2, 8] {
            let mut p = small_params();
            p.processors = procs;
            let m = Machine::new(
                &db,
                std::slice::from_ref(&tree),
                p,
                Granularity::Page,
                AllocationStrategy::default(),
            )
            .unwrap();
            let (_, metrics) = m.run();
            if let Some(prev) = last {
                assert!(
                    metrics.elapsed <= prev,
                    "{procs} processors slower than fewer"
                );
            }
            last = Some(metrics.elapsed);
        }
    }

    #[test]
    fn empty_result_query_completes() {
        let db = db();
        let (out, m) = run_one(&db, "(restrict (scan a) (> k 999))", Granularity::Page);
        assert!(out.is_empty());
        assert!(m.elapsed > SimTime::ZERO);
    }

    #[test]
    fn parallel_dedup_matches_serial_and_oracle() {
        // §5 extension: hash-partitioned blocking operators must agree with
        // both the serial finalizer and the oracle at any bucket count.
        let db = db();
        for q in [
            "(project-distinct (scan a) (v))",
            "(union (restrict (scan a) (< k 9)) (restrict (scan a) (> k 3)))",
            "(difference (scan a) (restrict (scan a) (< k 25)))",
        ] {
            let tree = parse_query(&db, q).unwrap();
            let oracle = execute_readonly(&db, &tree, &ExecParams::default()).unwrap();
            for buckets in [1usize, 2, 3, 8] {
                let mut p = small_params();
                p.dedup_buckets = buckets;
                let m = Machine::new(
                    &db,
                    std::slice::from_ref(&tree),
                    p,
                    Granularity::Page,
                    AllocationStrategy::default(),
                )
                .unwrap();
                let (rels, metrics) = m.run();
                assert!(rels[0].same_contents(&oracle), "{q} with {buckets} buckets");
                // One finalizer unit per bucket was dispatched.
                assert!(metrics.units_dispatched >= buckets as u64);
            }
        }
    }

    #[test]
    fn parallel_dedup_shortens_the_blocking_tail() {
        let db = db();
        let tree = parse_query(&db, "(project-distinct (scan a) (v))").unwrap();
        let run_with = |buckets: usize| {
            let mut p = small_params();
            p.dedup_buckets = buckets;
            let m = Machine::new(
                &db,
                std::slice::from_ref(&tree),
                p,
                Granularity::Page,
                AllocationStrategy::default(),
            )
            .unwrap();
            m.run().1.elapsed
        };
        let serial = run_with(1);
        let parallel = run_with(4);
        assert!(
            parallel <= serial,
            "4 buckets ({parallel}) slower than serial ({serial})"
        );
    }

    #[test]
    fn update_queries_apply() {
        let mut db = db();
        let tree = parse_query(&db, "(delete a (< k 10))").unwrap();
        let prog = compile(&db, std::slice::from_ref(&tree)).unwrap();
        let m = Machine::new(
            &db,
            &[tree],
            small_params(),
            Granularity::Page,
            AllocationStrategy::default(),
        )
        .unwrap();
        let (rels, _) = m.run();
        assert_eq!(rels[0].num_tuples(), 10);
        Machine::apply_updates(&mut db, &prog.updates, &rels).unwrap();
        assert_eq!(db.get("a").unwrap().num_tuples(), 20);
    }
}

//! The closed-form arbitration-network bandwidth model of paper §3.3.
//!
//! For a nested-loops join of relations with `n` and `m` tuples of 100
//! bytes, with per-packet overhead `c`:
//!
//! * tuple-level granularity moves `n·m·(200 + c)` bytes,
//! * page-level granularity with 1000-byte pages moves
//!   `(n/10)·(m/10)·(2000 + c) = n·m·(20 + c/100)` bytes,
//!
//! i.e. the page approach needs about **1/10** the bandwidth. These
//! functions reproduce that arithmetic exactly (with ceiling division for
//! partial pages) and are cross-checked against the *measured* byte counters
//! of the simulated machine by the `sec_3_3` bench and the integration
//! tests.

/// Bytes through the arbitration network for a tuple-level nested-loops
/// join: one packet per tuple pair, each carrying both tuples plus `c`
/// overhead bytes.
pub fn tuple_level_join_bytes(n: usize, m: usize, tuple_bytes: usize, c: usize) -> u64 {
    (n as u64) * (m as u64) * (2 * tuple_bytes + c) as u64
}

/// Number of packets for the tuple-level join.
pub fn tuple_level_join_packets(n: usize, m: usize) -> u64 {
    n as u64 * m as u64
}

/// Bytes through the arbitration network for a page-level nested-loops
/// join: one packet per page pair, each carrying both pages plus `c`.
///
/// `tuples_per_page` is the page capacity; partial last pages are counted
/// as full packets (they occupy a packet regardless), matching the paper's
/// whole-page arithmetic.
pub fn page_level_join_bytes(
    n: usize,
    m: usize,
    tuple_bytes: usize,
    tuples_per_page: usize,
    c: usize,
) -> u64 {
    let pages_n = n.div_ceil(tuples_per_page) as u64;
    let pages_m = m.div_ceil(tuples_per_page) as u64;
    let page_payload = (tuples_per_page * tuple_bytes) as u64;
    pages_n * pages_m * (2 * page_payload + c as u64)
}

/// Number of packets for the page-level join.
pub fn page_level_join_packets(n: usize, m: usize, tuples_per_page: usize) -> u64 {
    (n.div_ceil(tuples_per_page) as u64) * (m.div_ceil(tuples_per_page) as u64)
}

/// The bandwidth ratio tuple/page — the paper's headline "10×" (for
/// 100-byte tuples, 10-tuple pages, and negligible `c`).
pub fn tuple_over_page_ratio(
    n: usize,
    m: usize,
    tuple_bytes: usize,
    tuples_per_page: usize,
    c: usize,
) -> f64 {
    tuple_level_join_bytes(n, m, tuple_bytes, c) as f64
        / page_level_join_bytes(n, m, tuple_bytes, tuples_per_page, c) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_exact() {
        // n = m = 1000 tuples of 100 bytes, 10-tuple pages, c = 0:
        // tuple level: 10^6 · 200 = 2·10^8
        // page level:  100·100 · 2000 = 2·10^7  → exactly 10×.
        let n = 1000;
        assert_eq!(tuple_level_join_bytes(n, n, 100, 0), 200_000_000);
        assert_eq!(page_level_join_bytes(n, n, 100, 10, 0), 20_000_000);
        let r = tuple_over_page_ratio(n, n, 100, 10, 0);
        assert!((r - 10.0).abs() < 1e-9);
    }

    #[test]
    fn overhead_shifts_the_ratio_exactly_as_in_the_paper() {
        // §3.3: tuple = n·m·(200+c), page = n·m·(20 + c/100).
        let (n, c) = (1000, 50);
        let tuple = tuple_level_join_bytes(n, n, 100, c) as f64;
        let page = page_level_join_bytes(n, n, 100, 10, c) as f64;
        let nm = (n * n) as f64;
        assert!((tuple / nm - 250.0).abs() < 1e-9);
        assert!((page / nm - 20.5).abs() < 1e-9);
    }

    #[test]
    fn partial_pages_round_up() {
        // 11 tuples at 10/page = 2 pages.
        assert_eq!(page_level_join_packets(11, 10, 10), 2);
        assert_eq!(page_level_join_packets(10, 10, 10), 1);
        assert_eq!(tuple_level_join_packets(11, 10), 110);
    }

    #[test]
    fn bigger_pages_cut_another_order_of_magnitude() {
        // §3.3: "increasing the page size to 10,000 bytes will obviously
        // decrease the arbitration network bandwidth requirements by
        // another order of magnitude".
        let n = 10_000;
        let small = page_level_join_bytes(n, n, 100, 10, 0);
        let big = page_level_join_bytes(n, n, 100, 100, 0);
        let ratio = small as f64 / big as f64;
        assert!((ratio - 10.0).abs() < 1e-9, "ratio {ratio}");
    }
}

//! The three operand granularities of paper §3.

use std::fmt;

/// The unit of data a scheduling decision is based on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Granularity {
    /// §3.1 — enable an instruction only when its source operand(s) have
    /// been completely computed. Coarsest; no pipelining.
    Relation,
    /// §3.2 — enable as soon as at least one page of each operand exists.
    /// The paper's winner.
    Page,
    /// §3.3 — enable as soon as one tuple of each operand exists. Enabling
    /// behaves like page-level, but every tuple (pair) crosses the network
    /// as its own packet, multiplying arbitration traffic ~10×.
    Tuple,
}

impl Granularity {
    /// All three, for sweeps.
    pub const ALL: [Granularity; 3] =
        [Granularity::Relation, Granularity::Page, Granularity::Tuple];

    /// Whether instructions may fire before their operands are complete.
    pub fn pipelines(self) -> bool {
        !matches!(self, Granularity::Relation)
    }

    /// Network accounting for a work unit whose operand pages hold the given
    /// tuple counts and payload bytes: returns `(packets, payload_bytes)`
    /// *excluding* the per-packet overhead `c`, which the caller adds as
    /// `packets * c`.
    ///
    /// * Relation/Page level: each operand *page* crosses as one packet —
    ///   `(page_count, page_bytes_total)`.
    /// * Tuple level: a unary unit over a page of `n` tuples is `n` packets
    ///   of one tuple each; a binary (join) unit joining `n` outer tuples
    ///   against `m` inner tuples is `n·m` packets of two tuples each —
    ///   exactly the paper's `n·m·(200+c)` for 100-byte tuples.
    pub fn unit_packets(
        self,
        tuple_counts: &[usize],
        tuple_bytes: &[usize],
        page_count: usize,
        page_bytes_total: usize,
    ) -> (usize, usize) {
        match self {
            Granularity::Relation | Granularity::Page => (page_count, page_bytes_total),
            Granularity::Tuple => match (tuple_counts, tuple_bytes) {
                ([n], [w]) => (*n, n * w),
                ([n, m], [wn, wm]) => (n * m, n * m * (wn + wm)),
                _ => panic!(
                    "tuple-level accounting defined for 1 or 2 operands, got {}",
                    tuple_counts.len()
                ),
            },
        }
    }
}

impl fmt::Display for Granularity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Granularity::Relation => "relation",
            Granularity::Page => "page",
            Granularity::Tuple => "tuple",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipelining_flags() {
        assert!(!Granularity::Relation.pipelines());
        assert!(Granularity::Page.pipelines());
        assert!(Granularity::Tuple.pipelines());
    }

    #[test]
    fn page_level_is_one_packet_per_page() {
        let (p, b) = Granularity::Page.unit_packets(&[10, 10], &[100, 100], 2, 2032);
        assert_eq!((p, b), (2, 2032));
        let (p, b) = Granularity::Relation.unit_packets(&[10], &[100], 1, 1016);
        assert_eq!((p, b), (1, 1016));
    }

    #[test]
    fn tuple_level_join_matches_paper_formula() {
        // §3.3: n·m packets of 200 payload bytes for 100-byte tuples.
        let (p, b) = Granularity::Tuple.unit_packets(&[10, 10], &[100, 100], 2, 2032);
        assert_eq!(p, 100);
        assert_eq!(b, 100 * 200);
    }

    #[test]
    fn tuple_level_unary() {
        let (p, b) = Granularity::Tuple.unit_packets(&[10], &[100], 1, 1016);
        assert_eq!((p, b), (10, 1000));
    }

    #[test]
    fn display_names() {
        assert_eq!(Granularity::Relation.to_string(), "relation");
        assert_eq!(Granularity::Page.to_string(), "page");
        assert_eq!(Granularity::Tuple.to_string(), "tuple");
    }
}

//! Execution metrics: everything Figures 3.1 / 4.2 and the §3.3 analysis
//! report, measured (not estimated) from the simulation.

use std::fmt;

use df_obs::IntervalSeries;
use df_sim::stats::ByteCounter;
use df_sim::{Duration, SimTime};

/// Per-instruction statistics.
#[derive(Debug, Clone, Default)]
pub struct InstructionStats {
    /// Operator name ("restrict", "join", …).
    pub op_name: &'static str,
    /// Query index within the batch.
    pub query: usize,
    /// Work units executed.
    pub units: u64,
    /// Tuples produced.
    pub tuples_out: u64,
    /// Pages produced.
    pub pages_out: u64,
    /// When the instruction first fired.
    pub first_fire: Option<SimTime>,
    /// When the instruction completed.
    pub completed: Option<SimTime>,
}

/// Whole-run metrics.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    /// Makespan: when the last instruction completed.
    pub elapsed: SimTime,
    /// Bytes and packets through the arbitration network (memory → IPs).
    pub arbitration: ByteCounter,
    /// Bytes and packets through the distribution network (IPs → memory).
    pub distribution: ByteCounter,
    /// Bytes read from mass storage.
    pub disk_read: ByteCounter,
    /// Bytes written to mass storage (intermediate spills).
    pub disk_write: ByteCounter,
    /// Bytes moved into the disk cache.
    pub cache_in: ByteCounter,
    /// Bytes read out of the disk cache.
    pub cache_out: ByteCounter,
    /// Total processor busy time (across all processors).
    pub proc_busy: Duration,
    /// Number of processors configured.
    pub processors: usize,
    /// Total work units dispatched.
    pub units_dispatched: u64,
    /// Completion time of each query in the batch.
    pub query_completions: Vec<SimTime>,
    /// Per-instruction statistics.
    pub instructions: Vec<InstructionStats>,
    /// Per-interval arbitration-network demand over simulated time —
    /// Figure 4.2's curve rather than just its average. Totals equal
    /// `arbitration.bytes` exactly (both are fed from the same transfers).
    pub arbitration_series: IntervalSeries,
    /// Per-interval distribution-network demand. Totals equal
    /// `distribution.bytes` exactly.
    pub distribution_series: IntervalSeries,
}

impl Metrics {
    /// Mean processor utilization over the makespan.
    pub fn processor_utilization(&self) -> f64 {
        let denom = self.elapsed.as_nanos() as f64 * self.processors as f64;
        if denom == 0.0 {
            0.0
        } else {
            self.proc_busy.as_nanos() as f64 / denom
        }
    }

    /// Average arbitration-network bandwidth in Mbps (Figure 4.2's y-axis
    /// convention: total bytes / execution time).
    pub fn arbitration_mbps(&self) -> f64 {
        self.arbitration.mean_bandwidth_mbps(self.elapsed)
    }

    /// Average distribution-network bandwidth in Mbps.
    pub fn distribution_mbps(&self) -> f64 {
        self.distribution.mean_bandwidth_mbps(self.elapsed)
    }

    /// Average mass-storage bandwidth (read + write) in Mbps.
    pub fn disk_mbps(&self) -> f64 {
        let mut total = self.disk_read;
        total.merge(&self.disk_write);
        total.mean_bandwidth_mbps(self.elapsed)
    }

    /// Average cache-port bandwidth (both directions) in Mbps.
    pub fn cache_mbps(&self) -> f64 {
        let mut total = self.cache_in;
        total.merge(&self.cache_out);
        total.mean_bandwidth_mbps(self.elapsed)
    }

    /// Render an ASCII Gantt chart of per-instruction activity spans
    /// (first fire → completion), one row per instruction, `width`
    /// characters across the makespan. Handy for seeing pipelining: under
    /// page-level granularity parent and child bars overlap; under
    /// relation-level they abut.
    pub fn render_timeline(&self, width: usize) -> String {
        let width = width.max(10);
        let horizon = self.elapsed.as_nanos().max(1) as f64;
        let mut out = String::new();
        for st in &self.instructions {
            let (Some(start), Some(end)) = (st.first_fire, st.completed) else {
                continue;
            };
            let a = ((start.as_nanos() as f64 / horizon) * width as f64) as usize;
            let b = ((end.as_nanos() as f64 / horizon) * width as f64).ceil() as usize;
            let b = b.clamp(a + 1, width);
            let mut bar = String::with_capacity(width);
            bar.extend(std::iter::repeat(' ').take(a));
            bar.extend(std::iter::repeat('#').take(b - a));
            bar.extend(std::iter::repeat(' ').take(width - b));
            out.push_str(&format!(
                "q{:<2} {:<9} |{bar}| {:>9} -> {}\n",
                st.query,
                st.op_name,
                format!("{start}"),
                end,
            ));
        }
        out
    }

    /// The bandwidth-demand curves by stable path name, for the
    /// `BENCH_*.json` series rows.
    pub fn bandwidth_series(&self) -> [(&'static str, &IntervalSeries); 2] {
        [
            ("arbitration", &self.arbitration_series),
            ("distribution", &self.distribution_series),
        ]
    }

    /// Mean query response time across the batch.
    pub fn mean_response(&self) -> Duration {
        if self.query_completions.is_empty() {
            return Duration::ZERO;
        }
        let total: u64 = self.query_completions.iter().map(|t| t.as_nanos()).sum();
        Duration::from_nanos(total / self.query_completions.len() as u64)
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "elapsed            : {}", self.elapsed)?;
        writeln!(
            f,
            "processors         : {} ({:.1}% utilized)",
            self.processors,
            self.processor_utilization() * 100.0
        )?;
        writeln!(f, "units dispatched   : {}", self.units_dispatched)?;
        writeln!(
            f,
            "arbitration net    : {} bytes, {} packets, {:.2} Mbps avg",
            self.arbitration.bytes,
            self.arbitration.transfers,
            self.arbitration_mbps()
        )?;
        writeln!(
            f,
            "distribution net   : {} bytes, {} packets, {:.2} Mbps avg",
            self.distribution.bytes,
            self.distribution.transfers,
            self.distribution_mbps()
        )?;
        writeln!(
            f,
            "disk               : {} B read, {} B written, {:.2} Mbps avg",
            self.disk_read.bytes,
            self.disk_write.bytes,
            self.disk_mbps()
        )?;
        writeln!(
            f,
            "cache              : {} B in, {} B out, {:.2} Mbps avg",
            self.cache_in.bytes,
            self.cache_out.bytes,
            self.cache_mbps()
        )?;
        writeln!(f, "mean query response: {}", self.mean_response())?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_math() {
        let m = Metrics {
            elapsed: SimTime::from_nanos(1_000),
            proc_busy: Duration::from_nanos(1_500),
            processors: 3,
            ..Metrics::default()
        };
        assert!((m.processor_utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_elapsed_is_safe() {
        let m = Metrics::default();
        assert_eq!(m.processor_utilization(), 0.0);
        assert_eq!(m.arbitration_mbps(), 0.0);
        assert_eq!(m.mean_response(), Duration::ZERO);
    }

    #[test]
    fn bandwidth_views() {
        let mut m = Metrics {
            elapsed: SimTime::from_nanos(1_000_000_000), // 1 s
            ..Metrics::default()
        };
        m.arbitration.record(1_000_000);
        m.disk_read.record(500_000);
        m.disk_write.record(500_000);
        assert!((m.arbitration_mbps() - 8.0).abs() < 1e-9);
        assert!((m.disk_mbps() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn mean_response() {
        let m = Metrics {
            query_completions: vec![SimTime::from_nanos(100), SimTime::from_nanos(300)],
            ..Metrics::default()
        };
        assert_eq!(m.mean_response(), Duration::from_nanos(200));
    }

    #[test]
    fn timeline_renders_overlap() {
        let mut m = Metrics {
            elapsed: SimTime::from_nanos(1_000),
            ..Metrics::default()
        };
        m.instructions.push(InstructionStats {
            op_name: "restrict",
            query: 0,
            first_fire: Some(SimTime::from_nanos(0)),
            completed: Some(SimTime::from_nanos(500)),
            ..InstructionStats::default()
        });
        m.instructions.push(InstructionStats {
            op_name: "join",
            query: 0,
            first_fire: Some(SimTime::from_nanos(250)),
            completed: Some(SimTime::from_nanos(1_000)),
            ..InstructionStats::default()
        });
        // An instruction that never fired is skipped.
        m.instructions.push(InstructionStats::default());
        let art = m.render_timeline(40);
        assert_eq!(art.lines().count(), 2);
        let rows: Vec<&str> = art.lines().collect();
        assert!(rows[0].contains("restrict"));
        assert!(rows[1].contains("join"));
        // The join's bar starts midway: its row has leading spaces inside
        // the frame where the restrict's has '#'.
        let bar = |r: &str| r.split('|').nth(1).unwrap().to_string();
        assert!(bar(rows[0]).starts_with('#'));
        assert!(bar(rows[1]).starts_with(' '));
    }

    #[test]
    fn display_renders() {
        let m = Metrics::default();
        let s = format!("{m}");
        assert!(s.contains("elapsed"));
        assert!(s.contains("arbitration"));
    }
}

//! Admission-time concurrency control (requirement 1, §4.0).
//!
//! *"a database machine … must be able to support the simultaneous
//! execution of multiple queries from several users … This requires careful
//! control of which queries are permitted to execute concurrently."*
//!
//! Shared by every controller that admits queries: the ring machine's MC
//! (`df-ring` re-exports these types) and the real-threads host executor's
//! scheduler (`df-host`).
//!
//! The mechanism is relation-granularity shared/exclusive locking: a query
//! takes shared locks on every relation it reads and exclusive locks on
//! every relation it writes, all-or-nothing at admission time (so a running
//! query never blocks mid-flight — the MC simply refuses to *start* a
//! conflicting query). Waiters are served in arrival order, but a
//! non-conflicting younger query may be admitted ahead of a blocked older
//! one (the MC maximizes utilization; starvation is bounded because locks
//! are only held for a query's duration).

use std::collections::{BTreeMap, BTreeSet};

/// The lock set a query needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockRequest {
    /// Relations read (shared locks).
    pub reads: Vec<String>,
    /// Relations written (exclusive locks).
    pub writes: Vec<String>,
}

impl LockRequest {
    /// Build from a query's referenced/written relation lists.
    pub fn new(mut reads: Vec<String>, mut writes: Vec<String>) -> LockRequest {
        reads.sort();
        reads.dedup();
        writes.sort();
        writes.dedup();
        // A written relation is implicitly read-locked by the exclusive lock.
        reads.retain(|r| !writes.contains(r));
        LockRequest { reads, writes }
    }
}

/// Lock state of one relation.
#[derive(Debug, Clone, PartialEq, Eq)]
enum LockState {
    /// Held shared by these queries.
    Shared(BTreeSet<usize>),
    /// Held exclusively by this query.
    Exclusive(usize),
}

/// The MC's lock table.
///
/// ```
/// use df_core::{LockRequest, LockTable};
/// let mut locks = LockTable::new();
/// let reader = LockRequest::new(vec!["emp".into()], vec![]);
/// let writer = LockRequest::new(vec![], vec!["emp".into()]);
/// locks.grant(0, &reader);
/// assert!(!locks.compatible(&writer)); // readers block writers
/// locks.release(0);
/// assert!(locks.compatible(&writer));
/// ```
#[derive(Debug, Clone, Default)]
pub struct LockTable {
    locks: BTreeMap<String, LockState>,
}

impl LockTable {
    /// An empty table.
    pub fn new() -> LockTable {
        LockTable::default()
    }

    /// Whether `request` could be granted right now.
    pub fn compatible(&self, request: &LockRequest) -> bool {
        for r in &request.reads {
            if let Some(LockState::Exclusive(_)) = self.locks.get(r) {
                return false;
            }
        }
        for w in &request.writes {
            if self.locks.contains_key(w) {
                return false;
            }
        }
        true
    }

    /// Grant `request` to `query`.
    ///
    /// # Panics
    /// Panics if the request is not [`LockTable::compatible`] — the MC must
    /// check first; granting a conflicting request is an admission bug.
    pub fn grant(&mut self, query: usize, request: &LockRequest) {
        assert!(
            self.compatible(request),
            "granting conflicting lock request for query {query}"
        );
        for r in &request.reads {
            match self
                .locks
                .entry(r.clone())
                .or_insert_with(|| LockState::Shared(BTreeSet::new()))
            {
                LockState::Shared(holders) => {
                    holders.insert(query);
                }
                LockState::Exclusive(_) => unreachable!("compatibility checked"),
            }
        }
        for w in &request.writes {
            self.locks.insert(w.clone(), LockState::Exclusive(query));
        }
    }

    /// Release everything `query` holds.
    pub fn release(&mut self, query: usize) {
        self.locks.retain(|_, state| match state {
            LockState::Shared(holders) => {
                holders.remove(&query);
                !holders.is_empty()
            }
            LockState::Exclusive(q) => *q != query,
        });
    }

    /// Number of currently locked relations.
    pub fn locked_relations(&self) -> usize {
        self.locks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(reads: &[&str], writes: &[&str]) -> LockRequest {
        LockRequest::new(
            reads.iter().map(|s| s.to_string()).collect(),
            writes.iter().map(|s| s.to_string()).collect(),
        )
    }

    #[test]
    fn readers_share() {
        let mut t = LockTable::new();
        let r = req(&["a", "b"], &[]);
        assert!(t.compatible(&r));
        t.grant(0, &r);
        assert!(t.compatible(&req(&["a"], &[])));
        t.grant(1, &req(&["a"], &[]));
        assert_eq!(t.locked_relations(), 2);
    }

    #[test]
    fn writer_excludes_everyone() {
        let mut t = LockTable::new();
        t.grant(0, &req(&[], &["a"]));
        assert!(!t.compatible(&req(&["a"], &[])));
        assert!(!t.compatible(&req(&[], &["a"])));
        assert!(t.compatible(&req(&["b"], &[])));
    }

    #[test]
    fn readers_block_writers() {
        let mut t = LockTable::new();
        t.grant(0, &req(&["a"], &[]));
        assert!(!t.compatible(&req(&[], &["a"])));
    }

    #[test]
    fn release_unblocks() {
        let mut t = LockTable::new();
        t.grant(0, &req(&["a"], &["b"]));
        t.grant(1, &req(&["a"], &[]));
        t.release(0);
        // a still shared by 1; b free.
        assert!(!t.compatible(&req(&[], &["a"])));
        assert!(t.compatible(&req(&[], &["b"])));
        t.release(1);
        assert_eq!(t.locked_relations(), 0);
    }

    #[test]
    fn write_implies_read() {
        let r = LockRequest::new(vec!["a".into(), "b".into(), "a".into()], vec!["a".into()]);
        assert_eq!(r.reads, vec!["b".to_string()]);
        assert_eq!(r.writes, vec!["a".to_string()]);
    }

    #[test]
    #[should_panic(expected = "conflicting lock request")]
    fn conflicting_grant_panics() {
        let mut t = LockTable::new();
        t.grant(0, &req(&[], &["a"]));
        t.grant(1, &req(&["a"], &[]));
    }
}

//! Machine configuration and the cost model.

use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

use df_obs::Tracer;
use df_sim::Duration;
use df_storage::{CacheParams, DiskParams};

/// Which algorithm a `JoinPair` kernel runs on each page pair.
///
/// The paper (§2.1) commits to nested loops because every page of the outer
/// joins the inner independently — but that independence is a property of
/// the *unit decomposition*, not of the per-unit algorithm. `Hash` keeps
/// the page-pair units (and so the §3.2 firing rule and §4.2 broadcast
/// protocol) and replaces the inner scan of each unit with a raw-byte
/// key-index probe. Non-equi θs degrade to nested loops silently, so the
/// knob is always safe to turn on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum JoinAlgo {
    /// §2.1 nested loops: every (outer tuple, inner tuple) pair compared.
    #[default]
    Nested,
    /// Hash-accelerated equi-join: index the inner page's raw key bytes
    /// once, probe with each outer tuple (`df_query::ops::hash_join_pages_raw`).
    Hash,
}

impl JoinAlgo {
    /// Both algorithms, for sweeps.
    pub const ALL: [JoinAlgo; 2] = [JoinAlgo::Nested, JoinAlgo::Hash];
}

impl fmt::Display for JoinAlgo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            JoinAlgo::Nested => "nested",
            JoinAlgo::Hash => "hash",
        };
        write!(f, "{s}")
    }
}

impl FromStr for JoinAlgo {
    type Err = String;

    /// Parse the [`fmt::Display`] form back (round-trip guaranteed).
    fn from_str(s: &str) -> Result<JoinAlgo, String> {
        match s {
            "nested" => Ok(JoinAlgo::Nested),
            "hash" => Ok(JoinAlgo::Hash),
            other => Err(format!(
                "unknown join algorithm `{other}` (expected one of: nested, hash)"
            )),
        }
    }
}

/// How results move between chained unary operators.
///
/// The paper's instruction cells materialize a whole result page between
/// every operator (§3.2 fires a cell only when an operand page is
/// complete). `Pipeline` keeps the firing rule but fuses maximal
/// restrict→project→… chains into one `Kernel::Span` at compile time: the
/// chain's predicates and projections run per tuple over the *input* page
/// and only final survivors are written, so the intermediate pages — and
/// their transfer cost — never exist. Output is byte-identical either way.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TransferMode {
    /// One materialized result page per operator (the paper's design).
    #[default]
    Materialize,
    /// Fused restrict/project spans: one transfer per chain.
    Pipeline,
}

impl TransferMode {
    /// Both modes, for sweeps.
    pub const ALL: [TransferMode; 2] = [TransferMode::Materialize, TransferMode::Pipeline];
}

impl fmt::Display for TransferMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TransferMode::Materialize => "materialize",
            TransferMode::Pipeline => "pipeline",
        };
        write!(f, "{s}")
    }
}

impl FromStr for TransferMode {
    type Err = String;

    /// Parse the [`fmt::Display`] form back (round-trip guaranteed).
    fn from_str(s: &str) -> Result<TransferMode, String> {
        match s {
            "materialize" => Ok(TransferMode::Materialize),
            "pipeline" => Ok(TransferMode::Pipeline),
            other => Err(format!(
                "unknown transfer mode `{other}` (expected one of: materialize, pipeline)"
            )),
        }
    }
}

/// Per-operation timing constants — the "speed" of an instruction processor
/// and the interconnection networks.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Processor ingest rate in bytes/second. The paper's §4.1 sizes IPs as
    /// "PDP LSI-11s (can read a 16K byte page in 33ms)" — 16384 B / 0.033 s
    /// ≈ 496 kB/s, the default.
    pub proc_bytes_per_sec: f64,
    /// CPU cost per tuple comparison/production (predicate evaluation, join
    /// condition test, projection copy).
    pub per_tuple_cpu: Duration,
    /// Fixed dispatch overhead per work unit (memory-cell fire, control).
    pub per_unit_overhead: Duration,
    /// Arbitration/distribution network bandwidth in bytes/second
    /// (default 40 Mbps = 5 MB/s, the paper's shift-register ring rate).
    pub net_bytes_per_sec: f64,
    /// Fixed network cost per packet (switching + header processing).
    pub per_packet_latency: Duration,
    /// Number of independent network channels. The default of `usize::MAX`
    /// is resolved to the processor count at machine build time — DIRECT
    /// used a cross-point switch, i.e. a non-blocking path per processor.
    pub net_channels: usize,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            proc_bytes_per_sec: 496_000.0,
            per_tuple_cpu: Duration::from_micros(10),
            per_unit_overhead: Duration::from_micros(100),
            net_bytes_per_sec: 5_000_000.0,
            per_packet_latency: Duration::from_micros(50),
            net_channels: usize::MAX,
        }
    }
}

impl CostModel {
    /// Processor service time for a work unit ingesting `operand_bytes` and
    /// performing `tuple_ops` per-tuple operations.
    pub fn compute_time(&self, operand_bytes: usize, tuple_ops: usize) -> Duration {
        self.per_unit_overhead
            + Duration::from_secs_f64(operand_bytes as f64 / self.proc_bytes_per_sec)
            + self.per_tuple_cpu.saturating_mul(tuple_ops as u64)
    }

    /// Network service time for transferring `bytes` split into `packets`.
    pub fn net_time(&self, bytes: usize, packets: usize) -> Duration {
        Duration::from_secs_f64(bytes as f64 / self.net_bytes_per_sec)
            + self.per_packet_latency.saturating_mul(packets as u64)
    }
}

/// Full configuration of the simulated machine.
#[derive(Debug, Clone)]
pub struct MachineParams {
    /// Number of instruction processors.
    pub processors: usize,
    /// Memory cells per processor — §3.2's experiment used "two memory
    /// cells for each processor", letting data transfer for one instruction
    /// overlap execution of another.
    pub cells_per_processor: usize,
    /// Page size in bytes (header included) for intermediate results.
    pub page_size: usize,
    /// Per-packet control overhead `c` in bytes (the §3.3 analysis carries
    /// it symbolically; 32 bytes covers Fig 4.3's fixed header fields).
    pub packet_overhead: usize,
    /// For nested-loops joins: how many inner pages one work unit streams
    /// past its outer page. The processor holds the outer page (paper §4.2:
    /// an IP keeps "its current page of the outer" while inner pages are
    /// broadcast to it one by one), so larger batches amortize staging the
    /// outer page without changing results.
    pub max_inner_batch: usize,
    /// Hash-partition blocking finalizers (duplicate-eliminating project,
    /// union, difference) into this many parallel bucket units. `1` (the
    /// default) is the serial finalizer — the state of the art the paper
    /// §5 laments ("we … have not yet developed an algorithm for which a
    /// high degree of parallelism can be maintained"). Values > 1 implement
    /// the hash-partitioned answer: each processor scans the input and
    /// deduplicates its own hash bucket; duplicates always collide in one
    /// bucket, so the union of buckets is exact.
    pub dedup_buckets: usize,
    /// Model the broadcast facility of requirement 4 (§4.0): each join
    /// operand page crosses the interconnect and the cache **once** and is
    /// then held in the participating processors' local memories, instead
    /// of being re-shipped for every page pair. Default `true` (DIRECT's
    /// cross-point switch has it). The `sec_3_3` analysis disables it to
    /// reproduce the paper's pairwise `(n/10)·(m/10)·(2000+c)` formula,
    /// which predates the broadcast design. Tuple-level granularity never
    /// broadcasts — §3.3 charges every tuple pair its own packet.
    pub broadcast_join: bool,
    /// Join algorithm for `JoinPair` kernels. `Nested` (the default) is the
    /// paper's choice; `Hash` probes a per-page raw-byte key index on
    /// equi-joins, cutting per-unit work from O(n·m) to O(n + m) without
    /// changing the page-granularity unit decomposition or the results.
    pub join_algo: JoinAlgo,
    /// How results move between chained unary operators: `Materialize`
    /// (the paper's page-per-operator design, the default) or `Pipeline`
    /// (compile-time span fusion; see [`TransferMode`]).
    pub transfer: TransferMode,
    /// Processor/network speeds.
    pub cost: CostModel,
    /// Disk cache configuration.
    pub cache: CacheParams,
    /// Mass-storage configuration.
    pub disk: DiskParams,
    /// Structured event tracer (see [`df_obs::Tracer`]). `None` — the
    /// default — costs one branch per would-be event. An installed tracer
    /// receives every arbitration/distribution transfer stamped with
    /// *simulated* time, so traced byte totals equal the
    /// [`crate::Metrics`] counters exactly.
    pub trace: Option<Arc<Tracer>>,
}

impl Default for MachineParams {
    fn default() -> Self {
        MachineParams {
            processors: 8,
            cells_per_processor: 2,
            page_size: 1016,
            packet_overhead: 32,
            max_inner_batch: 8,
            dedup_buckets: 1,
            broadcast_join: true,
            join_algo: JoinAlgo::default(),
            transfer: TransferMode::default(),
            cost: CostModel::default(),
            cache: CacheParams {
                frames: 1024, // 1024 × ~1 KB pages ≈ 1 MB cache vs 5.5 MB DB
                ..CacheParams::default()
            },
            disk: DiskParams::default(),
            trace: None,
        }
    }
}

impl MachineParams {
    /// Convenience: the default machine with `processors` IPs.
    pub fn with_processors(processors: usize) -> MachineParams {
        MachineParams {
            processors,
            ..MachineParams::default()
        }
    }

    /// Resolved number of network channels (crossbar default = processors).
    pub fn net_channels(&self) -> usize {
        if self.cost.net_channels == usize::MAX {
            self.processors
        } else {
            self.cost.net_channels
        }
    }

    /// Sanity-check the configuration.
    ///
    /// # Panics
    /// Panics on zero processors, cells, or page size too small for the
    /// workloads' schemas (checked later at compile time per relation).
    pub fn validate(&self) {
        assert!(self.processors > 0, "machine needs at least one processor");
        assert!(
            self.cells_per_processor > 0,
            "processors need at least one memory cell"
        );
        assert!(self.page_size > 0, "page size must be positive");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lsi11_reads_16k_in_33ms() {
        let c = CostModel::default();
        let t = Duration::from_secs_f64(16_384.0 / c.proc_bytes_per_sec);
        assert!((t.as_millis_f64() - 33.0).abs() < 0.1, "{t}");
    }

    #[test]
    fn compute_time_components() {
        let c = CostModel {
            proc_bytes_per_sec: 1e6,
            per_tuple_cpu: Duration::from_micros(1),
            per_unit_overhead: Duration::from_micros(10),
            ..CostModel::default()
        };
        // 1000 bytes at 1 MB/s = 1 ms, plus 5 µs tuple ops, plus 10 µs fixed.
        let t = c.compute_time(1000, 5);
        assert_eq!(t.as_nanos(), 1_000_000 + 5_000 + 10_000);
    }

    #[test]
    fn net_time_components() {
        let c = CostModel {
            net_bytes_per_sec: 5e6,
            per_packet_latency: Duration::from_micros(50),
            ..CostModel::default()
        };
        let t = c.net_time(5_000, 2);
        assert_eq!(t.as_nanos(), 1_000_000 + 100_000);
    }

    #[test]
    fn channel_resolution() {
        let p = MachineParams::with_processors(12);
        assert_eq!(p.net_channels(), 12);
        let mut q = MachineParams::default();
        q.cost.net_channels = 3;
        assert_eq!(q.net_channels(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_processors_rejected() {
        MachineParams::with_processors(0).validate();
    }

    #[test]
    fn join_algo_display_from_str_round_trips() {
        for algo in JoinAlgo::ALL {
            let parsed: JoinAlgo = algo.to_string().parse().unwrap();
            assert_eq!(parsed, algo);
        }
        assert_eq!("hash".parse::<JoinAlgo>().unwrap(), JoinAlgo::Hash);
        assert!("grace".parse::<JoinAlgo>().is_err());
        assert_eq!(JoinAlgo::default(), JoinAlgo::Nested);
        assert_eq!(MachineParams::default().join_algo, JoinAlgo::Nested);
    }

    #[test]
    fn transfer_mode_display_from_str_round_trips() {
        for mode in TransferMode::ALL {
            let parsed: TransferMode = mode.to_string().parse().unwrap();
            assert_eq!(parsed, mode);
        }
        assert_eq!(
            "pipeline".parse::<TransferMode>().unwrap(),
            TransferMode::Pipeline
        );
        assert!("streaming".parse::<TransferMode>().is_err());
        assert_eq!(TransferMode::default(), TransferMode::Materialize);
        assert_eq!(MachineParams::default().transfer, TransferMode::Materialize);
    }
}

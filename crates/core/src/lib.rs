//! # df-core — data-flow query execution at three operand granularities
//!
//! This crate is the paper's primary contribution: a simulated DIRECT-like
//! MIMD database machine executing relational algebra query trees in
//! data-flow fashion, with the **operand granularity** — the unit a
//! scheduling decision is based on — selectable among the three §3
//! alternatives:
//!
//! * [`Granularity::Relation`] — an instruction is enabled only when every
//!   source operand has been *completely* computed (§3.1). No pipelining:
//!   intermediates are fully materialized, and under cache pressure they
//!   spill to disk and must be re-read.
//! * [`Granularity::Page`] — an instruction is enabled as soon as one page
//!   of each operand exists (§3.2). Pages of intermediate relations are
//!   pipelined up the query tree, which is the behaviour the paper shows
//!   outperforming relation-level by ≈2× (Figure 3.1).
//! * [`Granularity::Tuple`] — scheduling per tuple (§3.3). Enabling behaves
//!   like page-level, but every tuple pair crosses the arbitration network
//!   as its own packet: `n·m·(200+c)` bytes for a join of n×m 100-byte
//!   tuples, an order of magnitude more than page-level — the paper's
//!   argument against this granularity, reproduced by the `sec_3_3` bench.
//!
//! The machine executes **real operators on real pages** (the kernels of
//! `df-query::ops`), so a simulated run's result relation is checked for
//! multiset equality against the uniprocessor oracle by the integration
//! tests. The simulation clock advances through a parametric cost model
//! ([`MachineParams`]) defaulting to the paper's hardware: LSI-11
//! processors (16 KB page in 33 ms), a multiport CCD cache, two IBM 3330
//! drives, and a crossbar-style interconnect.
//!
//! Entry points: [`run_query`], [`run_queries`] (multi-query batches — the
//! form the paper's ten-query benchmark uses), both returning
//! ([`Relation`](df_relalg::Relation)s and) [`Metrics`].

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod bandwidth;
pub mod instr;

mod allocation;
mod concurrency;
mod granularity;
mod machine;
mod metrics;
mod params;
mod run;

pub use allocation::{AllocationStrategy, StrategyPicker, WorkCandidate, WorkPicker};
pub use concurrency::{LockRequest, LockTable};
pub use granularity::Granularity;
pub use machine::Machine;
pub use metrics::{InstructionStats, Metrics};
pub use params::{CostModel, JoinAlgo, MachineParams, TransferMode};
pub use run::{run_queries, run_query, RunOutput};

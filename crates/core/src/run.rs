//! High-level entry points.

use df_query::QueryTree;
use df_relalg::{Catalog, Relation, Result};

use crate::allocation::AllocationStrategy;
use crate::granularity::Granularity;
use crate::instr::{compile, UpdateSpec};
use crate::machine::Machine;
use crate::metrics::Metrics;
use crate::params::MachineParams;

/// Result of running a batch of queries on the simulated machine.
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// One result relation per query, in batch order.
    pub results: Vec<Relation>,
    /// Whole-run metrics.
    pub metrics: Metrics,
    /// Deferred database updates (apply with [`RunOutput::apply_updates`]).
    updates: Vec<Option<UpdateSpec>>,
}

impl RunOutput {
    /// Apply any append/delete updates the batch requested to `db`.
    pub fn apply_updates(&self, db: &mut Catalog) -> Result<()> {
        Machine::apply_updates(db, &self.updates, &self.results)
    }
}

/// Run a batch of queries concurrently on the simulated data-flow machine.
///
/// This is the form the paper's experiment uses: the ten-query benchmark is
/// a single batch whose makespan is the reported execution time.
///
/// # Errors
/// Propagates query validation errors.
pub fn run_queries(
    db: &Catalog,
    queries: &[QueryTree],
    params: &MachineParams,
    granularity: Granularity,
    strategy: AllocationStrategy,
) -> Result<RunOutput> {
    let updates = compile(db, queries)?.updates;
    let machine = Machine::new(db, queries, params.clone(), granularity, strategy)?;
    let (results, metrics) = machine.run();
    Ok(RunOutput {
        results,
        metrics,
        updates,
    })
}

/// Run a single query; returns its result relation and the metrics.
///
/// # Errors
/// Propagates query validation errors.
pub fn run_query(
    db: &Catalog,
    query: &QueryTree,
    params: &MachineParams,
    granularity: Granularity,
) -> Result<(Relation, Metrics)> {
    let mut out = run_queries(
        db,
        std::slice::from_ref(query),
        params,
        granularity,
        AllocationStrategy::default(),
    )?;
    Ok((out.results.remove(0), out.metrics))
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_query::parse_query;
    use df_relalg::{DataType, Schema, Tuple, Value};

    fn db() -> Catalog {
        let mut db = Catalog::new();
        let s = Schema::build()
            .attr("k", DataType::Int)
            .attr("v", DataType::Int)
            .finish()
            .unwrap();
        db.insert(
            Relation::from_tuples(
                "t",
                s,
                16 + 16 * 4,
                (0..16).map(|i| Tuple::new(vec![Value::Int(i), Value::Int(i % 3)])),
            )
            .unwrap(),
        )
        .unwrap();
        db
    }

    #[test]
    fn run_query_smoke() {
        let db = db();
        let q = parse_query(&db, "(restrict (scan t) (= v 0))").unwrap();
        let (rel, metrics) = run_query(
            &db,
            &q,
            &MachineParams::with_processors(2),
            Granularity::Page,
        )
        .unwrap();
        assert_eq!(rel.num_tuples(), 6);
        assert!(metrics.elapsed.as_nanos() > 0);
        assert_eq!(metrics.query_completions.len(), 1);
    }

    #[test]
    fn run_output_applies_updates() {
        let mut db = db();
        let q = parse_query(&db, "(append (restrict (scan t) (< k 2)) t)").unwrap();
        let out = run_queries(
            &db,
            &[q],
            &MachineParams::with_processors(2),
            Granularity::Page,
            AllocationStrategy::default(),
        )
        .unwrap();
        out.apply_updates(&mut db).unwrap();
        assert_eq!(db.get("t").unwrap().num_tuples(), 18);
    }
}

//! Processor-assignment strategies.
//!
//! The companion paper \[4\] ("Processor Allocation Strategies for
//! Multiprocessor Database Machines") evaluates four strategies and finds
//! the data-flow one best — the result that motivates this paper (§1). We
//! implement four analogous policies governing *which instruction's* ready
//! work a freed processor picks up; `abl_alloc` benches them against each
//! other.

use std::fmt;

/// A processor-assignment strategy: given the instructions that currently
/// have ready work, pick the one to serve next.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AllocationStrategy {
    /// Serve the lowest-numbered ready instruction until it has no ready
    /// work — effectively one instruction at a time, like a machine that
    /// dedicates the whole pool to a node before moving on.
    InstructionAtATime,
    /// Round-robin over ready instructions, ignoring load.
    RoundRobin,
    /// Serve the ready instruction with the fewest work units currently in
    /// flight — the paper's §4.1 arbitration goal of "insuring that
    /// processors are distributed across all nodes in the query tree".
    /// The default (this is the data-flow strategy of \[4\]).
    #[default]
    Balanced,
    /// Prefer instructions nearest the root (drain the pipeline's back end
    /// first).
    RootFirst,
}

impl AllocationStrategy {
    /// All strategies, for sweeps.
    pub const ALL: [AllocationStrategy; 4] = [
        AllocationStrategy::InstructionAtATime,
        AllocationStrategy::RoundRobin,
        AllocationStrategy::Balanced,
        AllocationStrategy::RootFirst,
    ];

    /// Choose among `candidates`, each described as
    /// `(instr_id, in_flight_units, depth_from_root)`. `rr_cursor` advances
    /// on every selection for the round-robin policy. Returns the chosen
    /// instruction id.
    ///
    /// # Panics
    /// Panics if `candidates` is empty.
    pub fn choose(self, candidates: &[(usize, usize, usize)], rr_cursor: &mut usize) -> usize {
        assert!(
            !candidates.is_empty(),
            "no ready instructions to choose from"
        );
        match self {
            AllocationStrategy::InstructionAtATime => {
                candidates.iter().map(|&(id, _, _)| id).min().unwrap()
            }
            AllocationStrategy::RoundRobin => {
                let idx = *rr_cursor % candidates.len();
                *rr_cursor = rr_cursor.wrapping_add(1);
                candidates[idx].0
            }
            AllocationStrategy::Balanced => {
                candidates
                    .iter()
                    .min_by_key(|&&(id, in_flight, _)| (in_flight, id))
                    .unwrap()
                    .0
            }
            AllocationStrategy::RootFirst => {
                candidates
                    .iter()
                    .min_by_key(|&&(id, _, depth)| (depth, id))
                    .unwrap()
                    .0
            }
        }
    }
}

impl fmt::Display for AllocationStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AllocationStrategy::InstructionAtATime => "instruction-at-a-time",
            AllocationStrategy::RoundRobin => "round-robin",
            AllocationStrategy::Balanced => "balanced",
            AllocationStrategy::RootFirst => "root-first",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // candidates: (id, in_flight, depth)
    const CANDS: [(usize, usize, usize); 3] = [(5, 2, 0), (3, 0, 2), (9, 1, 1)];

    #[test]
    fn instruction_at_a_time_picks_lowest_id() {
        let mut rr = 0;
        assert_eq!(
            AllocationStrategy::InstructionAtATime.choose(&CANDS, &mut rr),
            3
        );
    }

    #[test]
    fn balanced_picks_least_loaded() {
        let mut rr = 0;
        assert_eq!(AllocationStrategy::Balanced.choose(&CANDS, &mut rr), 3);
        // Tie on load -> lowest id.
        let tied = [(7, 1, 0), (2, 1, 0)];
        assert_eq!(AllocationStrategy::Balanced.choose(&tied, &mut rr), 2);
    }

    #[test]
    fn root_first_picks_smallest_depth() {
        let mut rr = 0;
        assert_eq!(AllocationStrategy::RootFirst.choose(&CANDS, &mut rr), 5);
    }

    #[test]
    fn round_robin_cycles() {
        let mut rr = 0;
        let picks: Vec<usize> = (0..4)
            .map(|_| AllocationStrategy::RoundRobin.choose(&CANDS, &mut rr))
            .collect();
        assert_eq!(picks, vec![5, 3, 9, 5]);
    }

    #[test]
    #[should_panic(expected = "no ready instructions")]
    fn empty_candidates_panics() {
        let mut rr = 0;
        AllocationStrategy::Balanced.choose(&[], &mut rr);
    }
}

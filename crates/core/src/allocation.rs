//! Processor-assignment strategies.
//!
//! The companion paper \[4\] ("Processor Allocation Strategies for
//! Multiprocessor Database Machines") evaluates four strategies and finds
//! the data-flow one best — the result that motivates this paper (§1). We
//! implement four analogous policies governing *which instruction's* ready
//! work a freed processor picks up; `abl_alloc` benches them against each
//! other.

use std::fmt;
use std::str::FromStr;

/// A processor-assignment strategy: given the instructions that currently
/// have ready work, pick the one to serve next.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AllocationStrategy {
    /// Serve the lowest-numbered ready instruction until it has no ready
    /// work — effectively one instruction at a time, like a machine that
    /// dedicates the whole pool to a node before moving on.
    InstructionAtATime,
    /// Round-robin over ready instructions, ignoring load.
    RoundRobin,
    /// Serve the ready instruction with the fewest work units currently in
    /// flight — the paper's §4.1 arbitration goal of "insuring that
    /// processors are distributed across all nodes in the query tree".
    /// The default (this is the data-flow strategy of \[4\]).
    #[default]
    Balanced,
    /// Prefer instructions nearest the root (drain the pipeline's back end
    /// first).
    RootFirst,
}

impl AllocationStrategy {
    /// All strategies, for sweeps.
    pub const ALL: [AllocationStrategy; 4] = [
        AllocationStrategy::InstructionAtATime,
        AllocationStrategy::RoundRobin,
        AllocationStrategy::Balanced,
        AllocationStrategy::RootFirst,
    ];

    /// Choose among `candidates`, each described as
    /// `(instr_id, in_flight_units, depth_from_root)`. `rr_cursor` advances
    /// on every selection for the round-robin policy. Returns the chosen
    /// instruction id.
    ///
    /// # Panics
    /// Panics if `candidates` is empty.
    pub fn choose(self, candidates: &[(usize, usize, usize)], rr_cursor: &mut usize) -> usize {
        assert!(
            !candidates.is_empty(),
            "no ready instructions to choose from"
        );
        match self {
            AllocationStrategy::InstructionAtATime => {
                candidates.iter().map(|&(id, _, _)| id).min().unwrap()
            }
            AllocationStrategy::RoundRobin => {
                let idx = *rr_cursor % candidates.len();
                *rr_cursor = rr_cursor.wrapping_add(1);
                candidates[idx].0
            }
            AllocationStrategy::Balanced => {
                candidates
                    .iter()
                    .min_by_key(|&&(id, in_flight, _)| (in_flight, id))
                    .unwrap()
                    .0
            }
            AllocationStrategy::RootFirst => {
                candidates
                    .iter()
                    .min_by_key(|&&(id, _, depth)| (depth, id))
                    .unwrap()
                    .0
            }
        }
    }
}

impl fmt::Display for AllocationStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AllocationStrategy::InstructionAtATime => "instruction-at-a-time",
            AllocationStrategy::RoundRobin => "round-robin",
            AllocationStrategy::Balanced => "balanced",
            AllocationStrategy::RootFirst => "root-first",
        };
        write!(f, "{s}")
    }
}

impl FromStr for AllocationStrategy {
    type Err = String;

    /// Parse the [`fmt::Display`] form back (round-trip guaranteed);
    /// `_` is accepted wherever the canonical form has `-`, so
    /// `--alloc round_robin` works on a shell command line too.
    fn from_str(s: &str) -> Result<AllocationStrategy, String> {
        match s.replace('_', "-").as_str() {
            "instruction-at-a-time" => Ok(AllocationStrategy::InstructionAtATime),
            "round-robin" => Ok(AllocationStrategy::RoundRobin),
            "balanced" => Ok(AllocationStrategy::Balanced),
            "root-first" => Ok(AllocationStrategy::RootFirst),
            other => Err(format!(
                "unknown allocation strategy `{other}` (expected one of: \
                 instruction-at-a-time, round-robin, balanced, root-first)"
            )),
        }
    }
}

/// One instruction with ready work, as a work-picking policy sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkCandidate {
    /// Instruction id (stable across the query's lifetime; lower = older).
    pub instr: usize,
    /// Work units of this instruction currently being executed.
    pub in_flight: usize,
    /// Distance from the query root (root = 0).
    pub depth: usize,
}

/// A work-picking policy: given the instructions that currently have ready
/// work, choose the one a freed processor serves next.
///
/// This is [`AllocationStrategy::choose`] lifted into a trait so executors
/// outside this crate — the `df-host` real-threads executor in particular —
/// can drive the same four policies (or supply their own) without copying
/// the selection logic. [`StrategyPicker`] is the canonical implementation.
pub trait WorkPicker {
    /// Choose among `candidates`, returning the chosen instruction id.
    ///
    /// # Panics
    /// Implementations may panic if `candidates` is empty — schedulers only
    /// ask when there is ready work.
    fn pick(&mut self, candidates: &[WorkCandidate]) -> usize;
}

/// A [`WorkPicker`] wrapping an [`AllocationStrategy`], owning the
/// round-robin cursor that [`AllocationStrategy::choose`] threads through
/// explicitly.
#[derive(Debug, Clone, Default)]
pub struct StrategyPicker {
    strategy: AllocationStrategy,
    rr_cursor: usize,
}

impl StrategyPicker {
    /// A picker applying `strategy`, with a fresh round-robin cursor.
    pub fn new(strategy: AllocationStrategy) -> StrategyPicker {
        StrategyPicker {
            strategy,
            rr_cursor: 0,
        }
    }

    /// The wrapped strategy.
    pub fn strategy(&self) -> AllocationStrategy {
        self.strategy
    }
}

impl WorkPicker for StrategyPicker {
    fn pick(&mut self, candidates: &[WorkCandidate]) -> usize {
        let tuples: Vec<(usize, usize, usize)> = candidates
            .iter()
            .map(|c| (c.instr, c.in_flight, c.depth))
            .collect();
        self.strategy.choose(&tuples, &mut self.rr_cursor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // candidates: (id, in_flight, depth)
    const CANDS: [(usize, usize, usize); 3] = [(5, 2, 0), (3, 0, 2), (9, 1, 1)];

    #[test]
    fn instruction_at_a_time_picks_lowest_id() {
        let mut rr = 0;
        assert_eq!(
            AllocationStrategy::InstructionAtATime.choose(&CANDS, &mut rr),
            3
        );
    }

    #[test]
    fn balanced_picks_least_loaded() {
        let mut rr = 0;
        assert_eq!(AllocationStrategy::Balanced.choose(&CANDS, &mut rr), 3);
        // Tie on load -> lowest id.
        let tied = [(7, 1, 0), (2, 1, 0)];
        assert_eq!(AllocationStrategy::Balanced.choose(&tied, &mut rr), 2);
    }

    #[test]
    fn root_first_picks_smallest_depth() {
        let mut rr = 0;
        assert_eq!(AllocationStrategy::RootFirst.choose(&CANDS, &mut rr), 5);
    }

    #[test]
    fn round_robin_cycles() {
        let mut rr = 0;
        let picks: Vec<usize> = (0..4)
            .map(|_| AllocationStrategy::RoundRobin.choose(&CANDS, &mut rr))
            .collect();
        assert_eq!(picks, vec![5, 3, 9, 5]);
    }

    #[test]
    #[should_panic(expected = "no ready instructions")]
    fn empty_candidates_panics() {
        let mut rr = 0;
        AllocationStrategy::Balanced.choose(&[], &mut rr);
    }

    #[test]
    fn display_from_str_round_trips() {
        for strategy in AllocationStrategy::ALL {
            let parsed: AllocationStrategy = strategy.to_string().parse().unwrap();
            assert_eq!(parsed, strategy);
        }
        // Underscore aliases for shell friendliness.
        assert_eq!(
            "round_robin".parse::<AllocationStrategy>().unwrap(),
            AllocationStrategy::RoundRobin
        );
        assert!("fastest-first".parse::<AllocationStrategy>().is_err());
    }

    #[test]
    fn strategy_picker_matches_choose() {
        let cands: Vec<WorkCandidate> = CANDS
            .iter()
            .map(|&(instr, in_flight, depth)| WorkCandidate {
                instr,
                in_flight,
                depth,
            })
            .collect();
        for strategy in AllocationStrategy::ALL {
            let mut picker = StrategyPicker::new(strategy);
            let mut rr = 0;
            for _ in 0..5 {
                assert_eq!(
                    picker.pick(&cands),
                    strategy.choose(&CANDS, &mut rr),
                    "picker diverged from choose under {strategy}"
                );
            }
        }
        assert_eq!(
            StrategyPicker::new(AllocationStrategy::RoundRobin).strategy(),
            AllocationStrategy::RoundRobin
        );
    }
}

//! Materialize-vs-pipeline differential tests: span fusion must never
//! change an answer, on any of the three executors.
//!
//! The correctness argument being exercised: restricts only filter and
//! projects are 1:1 byte rearrangements, so a tuple survives a fused chain
//! iff it passes the conjunction of the remapped predicates — fused and
//! unfused plans are answer-equivalent, and in the host's deterministic
//! mode (canonicalized pages) byte-identical.

use df_bench::setup;
use df_core::{
    run_queries, AllocationStrategy, Granularity, JoinAlgo, MachineParams, TransferMode,
};
use df_host::{HostParams, HostRunOutput};
use df_query::{execute_readonly, ExecParams, QueryTree, TreeBuilder};
use df_relalg::{Catalog, CmpOp, DataType, Relation, Schema, Tuple, Value};
use df_ring::RingParams;
use df_sim::rng::SimRng;
use df_workload::pipeline_queries;
use proptest::prelude::*;

fn worker_counts() -> Vec<usize> {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut counts = vec![1, 2, cores];
    counts.dedup();
    counts
}

fn host_images(out: &HostRunOutput) -> Vec<Vec<Vec<u8>>> {
    out.results
        .iter()
        .map(|r| {
            let r = r.as_ref().expect("query succeeds");
            r.pages().iter().map(|p| p.raw_data().to_vec()).collect()
        })
        .collect()
}

/// The tentpole acceptance matrix: all ten benchmark queries under
/// {materialize, pipeline} × {nested, hash} × {1, 2, cores} workers.
/// Pipeline is byte-identical to materialize (deterministic mode), both
/// match the sequential oracle, and the fused runs move strictly fewer
/// bytes through the workers (the intermediate pages never exist).
#[test]
fn ten_queries_pipeline_matches_materialize_host() {
    let s = setup(0.01);
    let queries = pipeline_queries(&s.db, &s.spec).expect("pipeline suite builds");
    let oracles: Vec<Relation> = queries
        .iter()
        .map(|q| execute_readonly(&s.db, q, &ExecParams::default()).expect("oracle"))
        .collect();

    for workers in worker_counts() {
        for join in JoinAlgo::ALL {
            let run = |transfer: TransferMode| {
                let params = HostParams {
                    join,
                    transfer,
                    deterministic: true,
                    ..HostParams::with_workers(workers)
                };
                df_host::run_host_queries(&s.db, &queries, &params).expect("host runs")
            };
            let mat = run(TransferMode::Materialize);
            let pipe = run(TransferMode::Pipeline);
            assert_eq!(
                host_images(&mat),
                host_images(&pipe),
                "pipeline changed result bytes at {workers} workers, {join}"
            );
            for (i, (got, want)) in pipe.results.iter().zip(&oracles).enumerate() {
                let got = got.as_ref().expect("query succeeds");
                assert!(
                    got.same_contents(want),
                    "query {i} diverged from oracle at {workers} workers, {join}"
                );
            }
            let moved = |out: &HostRunOutput| -> u64 {
                out.metrics.per_query.iter().map(|q| q.bytes_moved).sum()
            };
            assert!(
                moved(&pipe) < moved(&mat),
                "pipeline must move strictly fewer bytes: {} vs {} \
                 ({workers} workers, {join})",
                moved(&pipe),
                moved(&mat)
            );
            // Fused chains mean fewer units, while per-operator span
            // accounting keeps counting every logical operator (a chain
            // step even sees pages a materialize run would have dropped
            // as empty, so spans can exceed the materialize unit count).
            assert!(pipe.metrics.total_units() < mat.metrics.total_units());
            assert!(
                pipe.metrics.total_kernel_spans() > pipe.metrics.total_units(),
                "fused units must carry more logical spans than units"
            );
            assert!(pipe.metrics.total_kernel_spans() >= mat.metrics.total_units());
        }
    }
}

/// The ten queries through both simulated machines in both modes: answers
/// match the oracle, and the pipeline run transfers strictly fewer bytes.
#[test]
fn ten_queries_pipeline_matches_materialize_core_and_ring() {
    let s = setup(0.01);
    let queries = pipeline_queries(&s.db, &s.spec).expect("pipeline suite builds");
    let oracles: Vec<Relation> = queries
        .iter()
        .map(|q| execute_readonly(&s.db, q, &ExecParams::default()).expect("oracle"))
        .collect();

    // df-core machine.
    let run_core = |transfer: TransferMode| {
        let mut p = MachineParams::with_processors(4);
        p.cache.frames = 4096;
        p.transfer = transfer;
        run_queries(
            &s.db,
            &queries,
            &p,
            Granularity::Page,
            AllocationStrategy::default(),
        )
        .expect("core batch runs")
    };
    let mat = run_core(TransferMode::Materialize);
    let pipe = run_core(TransferMode::Pipeline);
    for (i, (got, want)) in pipe.results.iter().zip(&oracles).enumerate() {
        assert!(
            got.same_contents(want),
            "core query {i} diverged in pipeline"
        );
    }
    for (i, (a, b)) in pipe.results.iter().zip(&mat.results).enumerate() {
        assert!(a.same_contents(b), "core query {i}: modes disagree");
    }

    // Ring machine.
    let run_ring_mode = |transfer: TransferMode| {
        let mut p = RingParams::with_pools(2, 4);
        p.cache.frames = 4096;
        p.transfer = transfer;
        df_ring::run_ring_queries(&s.db, &queries, &p)
            .expect("ring runs")
            .metrics
    };
    let ring_mat = run_ring_mode(TransferMode::Materialize);
    let ring_pipe = run_ring_mode(TransferMode::Pipeline);
    assert!(
        ring_pipe.outer_ring.bytes < ring_mat.outer_ring.bytes,
        "ring pipeline must put strictly fewer bytes on the outer ring: {} vs {}",
        ring_pipe.outer_ring.bytes,
        ring_mat.outer_ring.bytes
    );
}

/// Ring-machine results in both modes (separate from the metrics check
/// above so a bandwidth regression and an answer regression report apart).
#[test]
fn ten_queries_ring_pipeline_answers_match_oracle() {
    let s = setup(0.01);
    let queries = pipeline_queries(&s.db, &s.spec).expect("pipeline suite builds");
    let mut p = RingParams::with_pools(2, 4);
    p.cache.frames = 4096;
    p.transfer = TransferMode::Pipeline;
    let out = df_ring::run_ring_queries(&s.db, &queries, &p).expect("ring runs");
    for (i, (got, q)) in out.results.iter().zip(&queries).enumerate() {
        let want = execute_readonly(&s.db, q, &ExecParams::default()).expect("oracle");
        assert!(
            got.same_contents(&want),
            "ring query {i} diverged in pipeline"
        );
    }
}

// ---------------------------------------------------------------------------
// Random restrict/project chains on all three executors
// ---------------------------------------------------------------------------

fn chain_db() -> Catalog {
    let schema = Schema::build()
        .attr("a", DataType::Int)
        .attr("b", DataType::Int)
        .attr("c", DataType::Int)
        .attr("d", DataType::Str(8))
        .finish()
        .unwrap();
    let mut db = Catalog::new();
    db.insert(
        Relation::from_tuples(
            "t",
            schema,
            256,
            (0..200i64).map(|i| {
                Tuple::new(vec![
                    Value::Int(i),
                    Value::Int(i % 7),
                    Value::Int((i * 3) % 11),
                    Value::Str(format!("s{}", i % 5)),
                ])
            }),
        )
        .unwrap(),
    )
    .unwrap();
    db
}

/// A random chain of `depth` restricts/projects over `scan t`, driven by
/// `rng`. Projects shrink and reorder the schema; restricts hit Int
/// attributes (the vectorized fast path) and occasionally the Str column
/// (the general `eval_ref` fallback inside a span).
fn random_chain(db: &Catalog, depth: usize, rng: &mut SimRng) -> QueryTree {
    const OPS: [CmpOp; 6] = [
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
    ];
    let b = TreeBuilder::new(db);
    let mut t = b.scan("t").unwrap();
    for _ in 0..depth {
        let schema = t.schema().clone();
        let ints: Vec<String> = schema
            .attrs()
            .iter()
            .filter(|a| a.dtype == DataType::Int)
            .map(|a| a.name.clone())
            .collect();
        let strs: Vec<String> = schema
            .attrs()
            .iter()
            .filter(|a| matches!(a.dtype, DataType::Str(_)))
            .map(|a| a.name.clone())
            .collect();
        let restrict = rng.gen_bool(0.5) && !ints.is_empty();
        if restrict {
            if !strs.is_empty() && rng.gen_bool(0.25) {
                let attr = rng.choose(&strs).unwrap().clone();
                let v = Value::Str(format!("s{}", rng.gen_range(0..5i64)));
                t = t.restrict_where(&attr, CmpOp::Eq, v).unwrap();
            } else {
                let attr = rng.choose(&ints).unwrap().clone();
                let op = *rng.choose(&OPS).unwrap();
                let v = Value::Int(rng.gen_range(-2..15i64));
                t = t.restrict_where(&attr, op, v).unwrap();
            }
        } else {
            let mut names: Vec<String> = schema.attrs().iter().map(|a| a.name.clone()).collect();
            rng.shuffle(&mut names);
            let keep = rng.gen_range(1..=names.len());
            names.truncate(keep);
            let refs: Vec<&str> = names.iter().map(String::as_str).collect();
            t = t.project(&refs, false).unwrap();
        }
    }
    t.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random restrict/project chains of depth 1–6: fused (pipeline) and
    /// unfused (materialize) runs agree with the oracle — and with each
    /// other — on df-core, df-ring, and df-host.
    #[test]
    fn random_chains_fused_equals_unfused_on_all_executors(
        seed in 0u64..10_000,
        depth in 1usize..=6,
    ) {
        let db = chain_db();
        let mut rng = SimRng::new(seed);
        let query = random_chain(&db, depth, &mut rng);
        let want = execute_readonly(&db, &query, &ExecParams::default()).expect("oracle");
        let queries = std::slice::from_ref(&query);

        for transfer in TransferMode::ALL {
            // df-core.
            let mut p = MachineParams::with_processors(2);
            p.cache.frames = 1024;
            p.transfer = transfer;
            let core = run_queries(
                &db, queries, &p, Granularity::Page, AllocationStrategy::default(),
            ).expect("core runs");
            prop_assert!(
                core.results[0].same_contents(&want),
                "seed {} depth {} {transfer}: core diverged", seed, depth
            );

            // df-ring.
            let mut p = RingParams::with_pools(1, 2);
            p.cache.frames = 1024;
            p.transfer = transfer;
            let ring = df_ring::run_ring_queries(&db, queries, &p).expect("ring runs");
            prop_assert!(
                ring.results[0].same_contents(&want),
                "seed {} depth {} {transfer}: ring diverged", seed, depth
            );

            // df-host.
            let params = HostParams {
                transfer,
                deterministic: true,
                ..HostParams::with_workers(2)
            };
            let (host, _) = df_host::run_host_query(&db, &query, &params).expect("host runs");
            prop_assert!(
                host.same_contents(&want),
                "seed {} depth {} {transfer}: host diverged", seed, depth
            );
        }
    }
}

/// Byte-level sanity pin for one concrete deep chain on the host: the
/// fused plan's canonical pages equal the unfused plan's exactly.
#[test]
fn deep_chain_is_byte_identical_across_modes() {
    let db = chain_db();
    let b = TreeBuilder::new(&db);
    let q = b
        .scan("t")
        .unwrap()
        .restrict_where("a", CmpOp::Lt, Value::Int(150))
        .unwrap()
        .project(&["b", "c", "d"], false)
        .unwrap()
        .restrict_where("c", CmpOp::Ge, Value::Int(3))
        .unwrap()
        .project(&["d", "b"], false)
        .unwrap()
        .restrict_where("b", CmpOp::Ne, Value::Int(4))
        .unwrap()
        .finish();
    let run = |transfer: TransferMode| {
        let params = HostParams {
            transfer,
            deterministic: true,
            ..HostParams::with_workers(3)
        };
        let (rel, metrics) = df_host::run_host_query(&db, &q, &params).expect("host runs");
        let images: Vec<Vec<u8>> = rel.pages().iter().map(|p| p.raw_data().to_vec()).collect();
        (images, metrics)
    };
    let (mat, mat_metrics) = run(TransferMode::Materialize);
    let (pipe, pipe_metrics) = run(TransferMode::Pipeline);
    assert_eq!(mat, pipe, "deep chain bytes diverged");
    assert!(!mat.is_empty(), "chain must survive some tuples");
    assert!(
        pipe_metrics.total_units() < mat_metrics.total_units(),
        "the five-step chain must fuse into fewer units"
    );
}

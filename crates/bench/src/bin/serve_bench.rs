//! Multi-client load generator for df-serve: closed- and open-loop
//! clients recording latency percentiles, sustained QPS, and the
//! server's admission/fusion counters into `BENCH_serve.json`.
//!
//! ```sh
//! cargo run --release -p df-bench --bin serve_bench -- \
//!     --clients 8 --qps 25 --duration 2 --mix read-same
//! ```
//!
//! Flags (all optional):
//! - `--addr A`       use a running df-serve (default: spawn in-process)
//! - `--scale F`      database scale when spawning (default 0.05)
//! - `--workers N`    executor workers when spawning
//! - `--lanes N`      read executor lanes when spawning (default 2)
//! - `--plan-cache N` plan-cache capacity when spawning (0 disables)
//! - `--batch-max N`  dispatcher batch size when spawning (default 64;
//!   smaller batches split a burst into more concurrent lane tasks)
//! - `--delay-every N`, `--delay-ms M`  inject a deterministic M-ms
//!   stall into every N-th executor unit when spawning — a stand-in for
//!   mass-storage staging latency, which the single-core CI container
//!   cannot otherwise exhibit (every mix here is CPU-bound on one core)
//! - `--clients N`    concurrent clients (default 8)
//! - `--optimize`     send queries with the optimize flag set, so a plan
//!   cache miss pays the df-opt planning pass (the work a hit skips)
//! - `--qps F`        per-client offered rate, open loop (default 25)
//! - `--duration S`   seconds per mode run (default 2)
//! - `--mix M`        `read-same` | `read-mixed` | `read-write` |
//!   `write-disjoint` (every fourth request appends to a per-client
//!   target in r10..r14 — disjoint writes overlap and never evict the
//!   read pool's cached plans) | `repeat-read[:N]` (zipf-ish over N
//!   distinct plans, default 8) | `view-read` (installs the two standing
//!   views of `RequestMix::VIEWS`, then blends writes into their base,
//!   view reads, and plain reads; the run ends with a differential check
//!   that each maintained view is byte-identical to re-running its
//!   defining query from scratch)
//! - `--mux`          spawn the in-process server in poll-based mux mode
//!   (one reader thread services every client socket)
//! - `--mode M`       `closed` | `open` (default: both, closed first)
//! - `--out-dir D`    artifact directory (default `.`)
//! - `--name N`       artifact name (default `serve`)
//! - `--shutdown`     send a shutdown request to `--addr` when done
//!
//! Latency accounting: closed-loop latency brackets each call; open-loop
//! latency is measured from the *scheduled* send time, so server-side
//! queueing under overload is charged to the response (no coordinated
//! omission).

use std::collections::HashMap;
use std::net::TcpStream;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use df_bench::loadgen::{percentile, GenRequest, LoopMode, RequestMix};
use df_bench::report::{series_row, write_artifact};
use df_obs::{BenchArtifact, IntervalSeries, SweepRow};
use df_serve::proto::{read_frame, write_frame, Priority, Request, Response, ServeError};
use df_serve::{Engine, ServeClient, ServeConfig, Server, ServerOptions};
use df_workload::{generate_database, DatabaseSpec};

struct Opts {
    addr: Option<String>,
    scale: f64,
    workers: Option<usize>,
    lanes: Option<usize>,
    plan_cache: Option<usize>,
    batch_max: Option<usize>,
    delay_every: Option<u64>,
    delay_ms: Option<u64>,
    clients: usize,
    qps: f64,
    duration: Duration,
    optimize: bool,
    mix: RequestMix,
    mux: bool,
    modes: Vec<LoopMode>,
    out_dir: String,
    name: String,
    shutdown: bool,
}

/// What one client measured during a mode run.
#[derive(Default)]
struct Tally {
    sent: u64,
    ok: u64,
    busy: u64,
    errors: u64,
    tuples: u64,
    payload_bytes: u64,
    latencies_ms: Vec<f64>,
    series: IntervalSeries,
}

fn main() {
    let opts = parse_args();
    // Spawn an in-process server unless pointed at a running one.
    let (addr, server) = match &opts.addr {
        Some(a) => (a.clone(), None),
        None => {
            let mut config = ServeConfig::default();
            if let Some(w) = opts.workers {
                config.host.workers = w;
            }
            if let Some(l) = opts.lanes {
                config.lanes = l;
            }
            if let Some(c) = opts.plan_cache {
                config.plan_cache_capacity = c;
            }
            if let Some(b) = opts.batch_max {
                config.batch_max = b;
            }
            if let Some(every) = opts.delay_every {
                config.host.fault.delay_every = Some(every);
                config.host.fault.delay = Duration::from_millis(opts.delay_ms.unwrap_or(1));
            }
            let db = generate_database(&DatabaseSpec::scaled(opts.scale));
            println!(
                "serve_bench: in-process server, scale {} ({} KB)",
                opts.scale,
                db.total_bytes() / 1024
            );
            let engine = Engine::new(db, config).unwrap_or_else(|e| die(&e));
            let listener = std::net::TcpListener::bind("127.0.0.1:0")
                .unwrap_or_else(|e| die(&format!("bind: {e}")));
            let server = Server::start_with(listener, engine, ServerOptions { mux: opts.mux })
                .unwrap_or_else(|e| die(&format!("server start: {e}")));
            (server.local_addr().to_string(), Some(server))
        }
    };

    let started = Instant::now();
    let mut artifact = BenchArtifact::new(&opts.name, "serve");
    artifact
        .param("addr", &addr)
        .param("clients", opts.clients)
        .param("qps", opts.qps)
        .param("duration_secs", opts.duration.as_secs_f64())
        .param("optimize", opts.optimize)
        .param("mix", opts.mix)
        .param("mux", opts.mux)
        .param(
            "delay",
            match opts.delay_every {
                Some(every) => format!("every {every} units, {} ms", opts.delay_ms.unwrap_or(1)),
                None => "none".to_string(),
            },
        )
        .param(
            "spawned",
            if server.is_some() {
                format!("scale {}", opts.scale)
            } else {
                "no".to_string()
            },
        );

    // The engine reports its lane count in its stats rows, so the
    // artifact records it even when benchmarking an external server.
    let lanes = *server_stats(&addr).get("lanes").unwrap_or(&0);
    artifact.param("lanes", lanes);

    // The view mix needs its standing views in place before any client
    // sends a read for them. Drop-then-install so a reused external
    // server starts from a fresh materialization.
    if opts.mix == RequestMix::ViewRead {
        let mut c = ServeClient::connect(&addr).unwrap_or_else(|e| die(&format!("connect: {e}")));
        for (name, text) in RequestMix::VIEWS {
            c.drop_view(name).ok();
            match c.install_view(name, text) {
                Ok(Response::Result(_)) => println!("serve_bench: installed view `{name}`"),
                Ok(other) => die(&format!("install `{name}`: {other:?}")),
                Err(e) => die(&format!("install `{name}`: {e}")),
            }
        }
    }

    let (mut queries, mut tuples, mut payload) = (0u64, 0u64, 0u64);
    for mode in &opts.modes {
        let before = server_stats(&addr);
        let run_start = Instant::now();
        let tallies: Vec<Tally> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..opts.clients)
                .map(|c| {
                    let addr = &addr;
                    let opts = &opts;
                    s.spawn(move || match mode {
                        LoopMode::Closed => run_closed(addr, c, opts, run_start),
                        LoopMode::Open => run_open(addr, c, opts, run_start),
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("client thread"))
                .collect()
        });
        let wall = run_start.elapsed().as_secs_f64();
        let after = server_stats(&addr);

        let mut all_ms: Vec<f64> = Vec::new();
        let mut row = Tally::default();
        for (c, t) in tallies.into_iter().enumerate() {
            row.sent += t.sent;
            row.ok += t.ok;
            row.busy += t.busy;
            row.errors += t.errors;
            row.tuples += t.tuples;
            row.payload_bytes += t.payload_bytes;
            all_ms.extend(&t.latencies_ms);
            if let Some(s) = series_row(&format!("{mode}/c{c}"), &t.series) {
                artifact.series.push(s);
            }
        }
        queries += row.sent;
        tuples += row.tuples;
        payload += row.payload_bytes;

        let delta = |key: &str| {
            (after.get(key).copied().unwrap_or(0) as i64
                - before.get(key).copied().unwrap_or(0) as i64) as f64
        };
        let p50 = percentile(&mut all_ms, 0.50);
        let p95 = percentile(&mut all_ms, 0.95);
        let p99 = percentile(&mut all_ms, 0.99);
        let qps_sustained = row.ok as f64 / wall;
        println!(
            "{mode}: {} sent, {} ok, {} busy, {} errors | p50 {p50:.2} ms, \
             p95 {p95:.2} ms, p99 {p99:.2} ms | {qps_sustained:.1} qps sustained | \
             server: {} submitted, {} executed, {} fused, {} joined, \
             cache {}/{} hit/miss, {} evicted, {} writes ({} overlapped), \
             {} delta pages, {} view reads",
            row.sent,
            row.ok,
            row.busy,
            row.errors,
            delta("submitted"),
            delta("executed"),
            delta("fused"),
            delta("inflight_joins"),
            delta("plan_cache_hits"),
            delta("plan_cache_misses"),
            delta("cache_evictions_partial"),
            delta("writes_applied"),
            delta("concurrent_write_batches"),
            delta("delta_pages"),
            delta("view_reads_served"),
        );
        artifact.sweep.push(SweepRow {
            label: format!("mode={mode}"),
            values: vec![
                ("clients".into(), opts.clients as f64),
                ("sent".into(), row.sent as f64),
                ("ok".into(), row.ok as f64),
                ("busy".into(), row.busy as f64),
                ("errors".into(), row.errors as f64),
                ("p50_ms".into(), p50),
                ("p95_ms".into(), p95),
                ("p99_ms".into(), p99),
                ("qps_sustained".into(), qps_sustained),
                ("submitted".into(), delta("submitted")),
                ("executed".into(), delta("executed")),
                ("fused".into(), delta("fused")),
                ("writes_applied".into(), delta("writes_applied")),
                ("reads".into(), delta("reads")),
                ("read_execs".into(), delta("read_execs")),
                ("inflight_joins".into(), delta("inflight_joins")),
                ("plan_cache_hits".into(), delta("plan_cache_hits")),
                ("plan_cache_misses".into(), delta("plan_cache_misses")),
                ("parses".into(), delta("parses")),
                (
                    "cache_evictions_partial".into(),
                    delta("cache_evictions_partial"),
                ),
                (
                    "concurrent_write_batches".into(),
                    delta("concurrent_write_batches"),
                ),
                ("mux_clients".into(), delta("mux_clients")),
                // Cumulative, not a delta: the v4 quiescence identity is
                // about whether any view exists, and installs happen
                // before the first mode run.
                (
                    "views_installed".into(),
                    after.get("views_installed").copied().unwrap_or(0) as f64,
                ),
                ("delta_pages".into(), delta("delta_pages")),
                ("view_reads_served".into(), delta("view_reads_served")),
                ("lanes".into(), lanes as f64),
            ],
        });
    }

    artifact.elapsed_secs = started.elapsed().as_secs_f64();
    artifact
        .counter("queries", queries as f64)
        .counter("result_tuples", tuples as f64)
        .counter("result_payload_bytes", payload as f64);

    // The IVM differential contract, checked against the live server:
    // after the whole write storm, each maintained view must be
    // byte-identical to re-running its defining query from scratch.
    if opts.mix == RequestMix::ViewRead {
        let mut c = ServeClient::connect(&addr).unwrap_or_else(|e| die(&format!("connect: {e}")));
        for (name, text) in RequestMix::VIEWS {
            let maintained = match c.read_view(name) {
                Ok(Response::Result(r)) => r.tuples,
                Ok(other) => die(&format!("verify read `{name}`: {other:?}")),
                Err(e) => die(&format!("verify read `{name}`: {e}")),
            };
            let mut fresh = match c.query(text, Priority::Normal, false) {
                Ok(Response::Result(r)) => r.tuples,
                Ok(other) => die(&format!("verify query `{name}`: {other:?}")),
                Err(e) => die(&format!("verify query `{name}`: {e}")),
            };
            fresh.sort();
            if maintained != fresh {
                die(&format!(
                    "view `{name}` diverged from scratch execution: \
                     {} maintained vs {} fresh tuples",
                    maintained.len(),
                    fresh.len()
                ));
            }
            println!(
                "verify: view `{name}` byte-identical to scratch run ({} tuples)",
                fresh.len()
            );
            c.drop_view(name).ok();
        }
    }

    if let Some(server) = server {
        server.shutdown();
        server.join();
    } else if opts.shutdown {
        let mut c = ServeClient::connect(&addr).unwrap_or_else(|e| die(&format!("connect: {e}")));
        c.request(&Request::Shutdown)
            .unwrap_or_else(|e| die(&format!("shutdown: {e}")));
        println!("serve_bench: server shutting down");
    }

    if let problems @ [_, ..] = &artifact.check()[..] {
        for p in problems {
            eprintln!("serve_bench: artifact invariant violated: {p}");
        }
        die("refusing to write an unsound artifact");
    }
    let path = write_artifact(std::path::Path::new(&opts.out_dir), &artifact)
        .unwrap_or_else(|e| die(&format!("cannot write artifact: {e}")));
    println!("json: wrote {}", path.display());
}

/// One closed-loop client: one request in flight, latency brackets the
/// call.
fn run_closed(addr: &str, client: usize, opts: &Opts, run_start: Instant) -> Tally {
    let mut conn =
        ServeClient::connect(addr).unwrap_or_else(|e| die(&format!("client connect: {e}")));
    let mut tally = Tally::default();
    let mut seq = 0u64;
    while run_start.elapsed() < opts.duration {
        let request = match opts.mix.request(client, seq) {
            GenRequest::Query(text) => conn.query_request(&text, Priority::Normal, opts.optimize),
            GenRequest::ViewRead(name) => conn.read_view_request(name),
        };
        seq += 1;
        tally.sent += 1;
        let t0 = Instant::now();
        let response = conn
            .request(&request)
            .unwrap_or_else(|e| die(&format!("client io: {e}")));
        tally.latencies_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        absorb(&mut tally, &response, run_start);
    }
    tally
}

/// One open-loop client: a sender thread issues requests on a fixed
/// schedule while the receiver matches pipelined responses by id.
fn run_open(addr: &str, client: usize, opts: &Opts, run_start: Instant) -> Tally {
    let stream = TcpStream::connect(addr).unwrap_or_else(|e| die(&format!("client connect: {e}")));
    stream.set_nodelay(true).ok();
    let mut writer = stream
        .try_clone()
        .unwrap_or_else(|e| die(&format!("clone: {e}")));
    let mut reader = std::io::BufReader::new(stream);
    // Scheduled send time per request id, read by the receiver to charge
    // queueing delay to the response.
    let scheduled: Mutex<HashMap<u64, Instant>> = Mutex::new(HashMap::new());
    let gap = Duration::from_secs_f64(1.0 / opts.qps.max(0.001));

    // `sent` is incremented before each frame goes out and `done` set
    // after the last, so the receiver only blocks on the socket when a
    // response is guaranteed to be on its way (the server replies exactly
    // once per request, Busy included).
    let sent = std::sync::atomic::AtomicU64::new(0);
    let done = std::sync::atomic::AtomicBool::new(false);

    let mut tally = Tally::default();
    std::thread::scope(|s| {
        let (scheduled, sent, done) = (&scheduled, &sent, &done);
        s.spawn(move || {
            let mut id = 0u64;
            loop {
                let due = run_start + gap * u32::try_from(id).unwrap_or(u32::MAX);
                let now = Instant::now();
                if now < due {
                    std::thread::sleep(due - now);
                }
                if run_start.elapsed() >= opts.duration {
                    done.store(true, std::sync::atomic::Ordering::SeqCst);
                    return;
                }
                let request = match opts.mix.request(client, id) {
                    GenRequest::Query(text) => Request::Query {
                        id,
                        priority: Priority::Normal,
                        optimize: opts.optimize,
                        text,
                    },
                    GenRequest::ViewRead(name) => Request::ReadView {
                        id,
                        name: name.to_string(),
                    },
                };
                scheduled.lock().expect("schedule lock").insert(id, due);
                sent.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                write_frame(&mut writer, &request.encode())
                    .unwrap_or_else(|e| die(&format!("client send: {e}")));
                id += 1;
            }
        });
        let mut received = 0u64;
        loop {
            if received == sent.load(std::sync::atomic::Ordering::SeqCst) {
                if done.load(std::sync::atomic::Ordering::SeqCst)
                    && received == sent.load(std::sync::atomic::Ordering::SeqCst)
                {
                    break;
                }
                std::thread::sleep(Duration::from_millis(1));
                continue;
            }
            let payload = match read_frame(&mut reader) {
                Ok(Some(p)) => p,
                Ok(None) => die("server closed mid-run"),
                Err(e) => die(&format!("client recv: {e}")),
            };
            let response =
                Response::decode(&payload).unwrap_or_else(|e| die(&format!("bad response: {e}")));
            let id = match &response {
                Response::Result(r) => r.id,
                Response::Error { id, .. } => *id,
                other => die(&format!("unexpected response: {other:?}")),
            };
            if let Some(due) = scheduled.lock().expect("schedule lock").remove(&id) {
                tally.latencies_ms.push(due.elapsed().as_secs_f64() * 1e3);
            }
            absorb(&mut tally, &response, run_start);
            received += 1;
        }
        tally.sent = received;
    });
    tally
}

/// Fold one response into the tally and its bandwidth series.
fn absorb(tally: &mut Tally, response: &Response, run_start: Instant) {
    match response {
        Response::Result(r) => {
            tally.ok += 1;
            tally.tuples += r.tuples.len() as u64;
            let bytes: u64 = r.tuples.iter().map(|t| t.len() as u64).sum();
            tally.payload_bytes += bytes;
            tally
                .series
                .record(run_start.elapsed().as_nanos() as u64, bytes);
        }
        Response::Error {
            error: ServeError::Busy { .. },
            ..
        } => tally.busy += 1,
        Response::Error { .. } => tally.errors += 1,
        _ => tally.errors += 1,
    }
}

/// Fetch the server's counters over a throwaway control connection.
fn server_stats(addr: &str) -> HashMap<String, u64> {
    let mut c = ServeClient::connect(addr).unwrap_or_else(|e| die(&format!("stats connect: {e}")));
    match c.request(&Request::Stats) {
        Ok(Response::Stats(rows)) => rows.into_iter().collect(),
        Ok(other) => die(&format!("unexpected stats response: {other:?}")),
        Err(e) => die(&format!("stats: {e}")),
    }
}

fn parse_args() -> Opts {
    let mut opts = Opts {
        addr: None,
        scale: 0.05,
        workers: None,
        lanes: None,
        plan_cache: None,
        batch_max: None,
        delay_every: None,
        delay_ms: None,
        clients: 8,
        qps: 25.0,
        duration: Duration::from_secs(2),
        optimize: false,
        mix: RequestMix::default(),
        mux: false,
        modes: LoopMode::ALL.to_vec(),
        out_dir: ".".to_string(),
        name: "serve".to_string(),
        shutdown: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| die(&format!("{flag} needs a value")))
        };
        match flag.as_str() {
            "--addr" => opts.addr = Some(value("--addr")),
            "--scale" => opts.scale = parse(&value("--scale"), "--scale"),
            "--workers" => opts.workers = Some(parse(&value("--workers"), "--workers")),
            "--lanes" => opts.lanes = Some(parse(&value("--lanes"), "--lanes")),
            "--plan-cache" => opts.plan_cache = Some(parse(&value("--plan-cache"), "--plan-cache")),
            "--batch-max" => opts.batch_max = Some(parse(&value("--batch-max"), "--batch-max")),
            "--delay-every" => {
                opts.delay_every = Some(parse(&value("--delay-every"), "--delay-every"));
            }
            "--delay-ms" => opts.delay_ms = Some(parse(&value("--delay-ms"), "--delay-ms")),
            "--optimize" => opts.optimize = true,
            "--clients" => opts.clients = parse(&value("--clients"), "--clients"),
            "--qps" => opts.qps = parse(&value("--qps"), "--qps"),
            "--duration" => {
                opts.duration = Duration::from_secs_f64(parse(&value("--duration"), "--duration"));
            }
            "--mix" => opts.mix = value("--mix").parse().unwrap_or_else(|e: String| die(&e)),
            "--mux" => opts.mux = true,
            "--mode" => {
                opts.modes = vec![value("--mode").parse().unwrap_or_else(|e: String| die(&e))];
            }
            "--out-dir" => opts.out_dir = value("--out-dir"),
            "--name" => opts.name = value("--name"),
            "--shutdown" => opts.shutdown = true,
            other => die(&format!("unknown flag `{other}`")),
        }
    }
    if opts.clients == 0 {
        die("--clients must be >= 1");
    }
    opts
}

fn parse<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse()
        .unwrap_or_else(|_| die(&format!("bad value `{s}` for {flag}")))
}

fn die(msg: &str) -> ! {
    eprintln!("serve_bench: {msg}");
    std::process::exit(2);
}

//! Regenerate every table and figure of Boral & DeWitt 1980 at full scale
//! (the 5.5 MB, 15-relation database and the ten-query benchmark).
//!
//! ```sh
//! cargo run --release -p df-bench --bin experiments            # everything
//! cargo run --release -p df-bench --bin experiments -- fig3_1  # one table
//! cargo run --release -p df-bench --bin experiments -- --join hash fig3_1
//! cargo run --release -p df-bench --bin experiments -- \
//!     --scale 0.05 --json artifacts fig4_2 perf_hj   # CI perf-smoke mode
//! ```
//!
//! Available tables: `fig3_1`, `sec3_3`, `fig4_2`, `abl_pgsz`, `abl_alloc`,
//! `abl_bcast`, `abl_route`, `abl_proj`, `abl_multi`, `perf_hj`,
//! `perf_pipe`. The flag
//! `--join {nested,hash}` switches the join algorithm of the machine
//! configurations built in `main` (default `nested`, the paper's choice);
//! `--scale F` shrinks the database (default 1.0, the paper's 5.5 MB);
//! `--json DIR` additionally serializes the `fig3_1`, `fig4_2`, `perf_hj`
//! and `perf_pipe` tables into `DIR/BENCH_<name>.json` artifacts
//! (DESIGN.md §7).
//! The output of a full run is recorded in `EXPERIMENTS.md`.

use std::path::{Path, PathBuf};

use df_bench::report::{host_artifact, ring_artifact, sweep_artifact, write_artifact};
use df_bench::{
    fig31_params, fig42_params, run_core, run_ring, setup, setup_with_page_size, BenchSetup,
};
use df_core::{bandwidth, run_queries, AllocationStrategy, Granularity, JoinAlgo, MachineParams};
use df_obs::SweepRow;
use df_workload::{benchmark_queries, chain_query, generate_database, VAL_DOMAIN};

fn main() {
    let mut join = JoinAlgo::default();
    let mut scale = 1.0f64;
    let mut json_dir: Option<PathBuf> = None;
    let mut which: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    let value = |flag: &str, args: &mut dyn Iterator<Item = String>| {
        args.next().unwrap_or_else(|| {
            eprintln!("experiments: {flag} needs a value");
            std::process::exit(2);
        })
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--join" => {
                join = value("--join", &mut args)
                    .parse()
                    .unwrap_or_else(|e: String| {
                        eprintln!("experiments: {e}");
                        std::process::exit(2);
                    });
            }
            "--scale" => {
                let v = value("--scale", &mut args);
                scale = v.parse().unwrap_or_else(|_| {
                    eprintln!("experiments: bad value `{v}` for --scale");
                    std::process::exit(2);
                });
            }
            "--json" => json_dir = Some(PathBuf::from(value("--json", &mut args))),
            _ => which.push(a),
        }
    }
    let want = |name: &str| which.is_empty() || which.iter().any(|w| w == name);
    let json_dir = json_dir.as_deref();

    println!("=== dataflow-dbm experiment harness (scale {scale}: 10 queries) ===");
    let mut s = setup(scale);
    s.join = join;
    let s = s;
    println!(
        "database: {} relations, {} bytes, {} tuples\n",
        s.db.len(),
        s.db.total_bytes(),
        s.db.total_tuples()
    );

    if want("fig3_1") {
        fig3_1(&s, json_dir);
    }
    if want("sec3_3") {
        sec3_3();
    }
    if want("fig4_2") {
        // Figure 4.2's stated assumption: 16 KB operand pages.
        let mut s16 = setup_with_page_size(scale, 16 * 1024);
        s16.join = join;
        fig4_2(&s16, json_dir);
    }
    if want("abl_pgsz") {
        abl_pgsz(&s);
    }
    if want("abl_alloc") {
        abl_alloc(&s);
    }
    if want("abl_bcast") {
        abl_bcast(&s);
    }
    if want("abl_route") {
        abl_route(&s);
    }
    if want("abl_proj") {
        abl_proj();
    }
    if want("abl_multi") {
        abl_multi();
    }
    if want("perf_hj") {
        perf_hj(scale.min(0.2), json_dir);
    }
    if want("perf_pipe") {
        perf_pipe(scale.min(0.2), json_dir);
    }
}

/// Write `artifact` into the `--json` directory, if one was given.
fn emit(json_dir: Option<&Path>, artifact: &df_obs::BenchArtifact) {
    let Some(dir) = json_dir else { return };
    match write_artifact(dir, artifact) {
        Ok(path) => println!("json: wrote {}", path.display()),
        Err(e) => {
            eprintln!(
                "experiments: cannot write artifact `{}`: {e}",
                artifact.name
            );
            std::process::exit(2);
        }
    }
}

/// PERF-HJ: the hash-accelerated equi-join path vs the paper's nested
/// loops — first at the kernel level (every page pair of one
/// low-selectivity fk = key join, timed on this host), then end to end on
/// the real-threads executor with the probe/sweep unit split.
fn perf_hj(scale: f64, json_dir: Option<&Path>) {
    use df_host::{run_host_queries, HostParams};
    use df_query::ops::{hash_join_pages_raw, hash_join_probe, join_pages_raw};
    use df_relalg::{JoinCondition, PageKeyIndex};
    use df_workload::{FK_ATTR, KEY_ATTR};
    use std::time::Instant;

    println!("--- PERF-HJ: hash equi-join vs nested loops (scale {scale}, 4096 B pages)");
    let s = setup_with_page_size(scale, 4096);
    let outer = s.db.get("r01").expect("workload relation");
    let inner = s.db.get("r00").expect("workload relation");
    let cond =
        JoinCondition::equi(outer.schema(), FK_ATTR, inner.schema(), KEY_ATTR).expect("condition");
    let out_schema = outer.schema().concat(inner.schema());
    let pairs = outer.pages().len() * inner.pages().len();

    // Best of three sweeps over every page pair (the §3.2 work units of
    // one join instruction), timed without the executor around them.
    let time = |kernel: &dyn Fn() -> usize| -> (f64, usize) {
        let mut best = f64::MAX;
        let mut tuples = 0;
        for _ in 0..3 {
            let t0 = Instant::now();
            tuples = kernel();
            best = best.min(t0.elapsed().as_secs_f64());
        }
        (best, tuples)
    };
    let (nested_s, nested_n) = time(&|| {
        let mut n = 0;
        for op in outer.pages() {
            for ip in inner.pages() {
                n += join_pages_raw(op, ip, &cond, &out_schema).len();
            }
        }
        n
    });
    let (hash_s, hash_n) = time(&|| {
        let mut n = 0;
        for op in outer.pages() {
            for ip in inner.pages() {
                n += hash_join_pages_raw(op, ip, &cond, &out_schema).len();
            }
        }
        n
    });
    // The executor's actual firing: each inner page's index is built once
    // (by the first worker that probes it) and cached on the cell's
    // operand table, so later pairs pay probes only.
    let (cached_s, cached_n) = time(&|| {
        let mut n = 0;
        for ip in inner.pages() {
            let idx = PageKeyIndex::build(ip, cond.right);
            for op in outer.pages() {
                n += hash_join_probe(op, ip, &idx, &cond, &out_schema).len();
            }
        }
        n
    });
    assert_eq!(nested_n, hash_n, "kernels disagree on the join result");
    assert_eq!(nested_n, cached_n, "cached path disagrees on the result");
    println!(
        "kernel ({} page pairs, {} result tuples):\n  \
         nested sweep      {:.4}s\n  \
         hash, per-pair    {:.4}s  (index rebuilt each pair)   speedup {:.2}x\n  \
         hash, cached idx  {:.4}s  (one build per inner page)  speedup {:.2}x",
        pairs,
        nested_n,
        nested_s,
        hash_s,
        nested_s / hash_s,
        cached_s,
        nested_s / cached_s
    );

    println!(
        "host (ten-query benchmark, {} workers):",
        HostParams::default().workers
    );
    for join in JoinAlgo::ALL {
        let params = HostParams {
            page_size: 4096,
            join,
            ..HostParams::default()
        };
        let out = run_host_queries(&s.db, &s.queries, &params).expect("host run");
        let probes: usize = out.metrics.per_query.iter().map(|q| q.probe_units).sum();
        let sweeps: usize = out.metrics.per_query.iter().map(|q| q.sweep_units).sum();
        println!(
            "  {join:<6}  elapsed {:>8.2?}  probe units {probes:>6}  sweep units {sweeps:>6}",
            out.metrics.elapsed
        );
        emit(
            json_dir,
            &host_artifact(&format!("perf_hj_{join}"), scale, &params, &out),
        );
    }
    println!("deviation from the paper (DESIGN.md §5): the IPs' join kernel is a knob\n");
}

/// PERF-PIPE: fused pipelined spans vs the paper's per-cell page
/// materialization — first at the kernel level (the vectorized raw
/// restrict/project kernels and the fused span vs its materializing
/// step-at-a-time baseline, in MiB/s over this host's pages), then end to
/// end: the ten pipeline-bearing queries in both transfer modes × both
/// join algorithms on the real-threads executor, and on the ring machine
/// where the saved intermediate-page traffic shows up as outer-ring bytes.
fn perf_pipe(scale: f64, json_dir: Option<&Path>) {
    use df_bench::report::series_row;
    use df_core::TransferMode;
    use df_host::{run_host_queries, HostParams};
    use df_query::ops::{
        project_page, project_page_raw, restrict_page, restrict_page_raw, span_output_schema,
        span_page_raw, SpanStep,
    };
    use df_relalg::{CmpOp, Page, Predicate, Projection, Value};
    use df_ring::run_ring_queries;
    use df_workload::{pipeline_queries, FK_ATTR, KEY_ATTR, VAL_ATTR};
    use std::time::Instant;

    println!(
        "--- PERF-PIPE: pipelined spans vs per-cell materialization (scale {scale}, 4096 B pages)"
    );
    let s = setup_with_page_size(scale, 4096);
    let queries = pipeline_queries(&s.db, &s.spec).expect("pipeline suite builds");

    // Kernel level: every page of one workload relation, best of five
    // sweeps; MiB/s over the tuple bytes each kernel reads.
    let rel = s.db.get("r00").expect("workload relation");
    let schema = rel.schema().clone();
    let pred = Predicate::cmp_const(&schema, VAL_ATTR, CmpOp::Lt, Value::Int(VAL_DOMAIN / 2))
        .expect("predicate");
    let proj = Projection::new(&schema, &[KEY_ATTR, FK_ATTR, VAL_ATTR]).expect("projection");
    let proj_schema = proj.output_schema(&schema).expect("projected schema");
    // The suite's root pattern: restrict → project → restrict, so the
    // stepwise baseline materializes two intermediate pages per input page.
    let pred2 = Predicate::cmp_const(
        &proj_schema,
        VAL_ATTR,
        CmpOp::Ge,
        Value::Int(VAL_DOMAIN / 8),
    )
    .expect("predicate");
    let steps = vec![
        SpanStep::Restrict(pred.clone()),
        SpanStep::Project(proj.clone()),
        SpanStep::Restrict(pred2.clone()),
    ];
    let span_schema = span_output_schema(&schema, &steps).expect("span schema");
    let in_bytes: u64 = rel
        .pages()
        .iter()
        .map(|p| (p.len() * schema.tuple_width()) as u64)
        .sum();
    let mibps = |kernel: &dyn Fn() -> usize| -> f64 {
        let mut best = f64::MAX;
        for _ in 0..5 {
            let t0 = Instant::now();
            std::hint::black_box(kernel());
            best = best.min(t0.elapsed().as_secs_f64());
        }
        in_bytes as f64 / best / (1 << 20) as f64
    };
    let sweep = |per_page: &dyn Fn(&Page) -> usize| -> usize {
        rel.pages().iter().map(|p| per_page(p)).sum()
    };
    let restrict_decoded = mibps(&|| sweep(&|p| restrict_page(p, &pred).len()));
    let restrict_raw = mibps(&|| sweep(&|p| restrict_page_raw(p, &pred).len()));
    let project_decoded = mibps(&|| sweep(&|p| project_page(p, &proj).len()));
    let project_raw = mibps(&|| sweep(&|p| project_page_raw(p, &proj, &proj_schema).len()));
    // The materializing baseline the span replaces: each step repacks its
    // survivors into an intermediate page the next step reads back.
    let span_stepwise = mibps(&|| {
        sweep(&|p| {
            let mut mid = restrict_page_raw(p, &pred);
            let cap = 16 + schema.tuple_width() * mid.len().max(1);
            let mut page = Page::new(schema.clone(), cap).expect("intermediate page");
            mid.drain_into(&mut page);
            let mut projected = project_page_raw(&page, &proj, &proj_schema);
            let cap = 16 + proj_schema.tuple_width() * projected.len().max(1);
            let mut page = Page::new(proj_schema.clone(), cap).expect("intermediate page");
            projected.drain_into(&mut page);
            restrict_page_raw(&page, &pred2).len()
        })
    });
    let span_fused = mibps(&|| sweep(&|p| span_page_raw(p, &steps, &span_schema).len()));
    println!(
        "kernel ({} pages, {} KiB tuple data):\n  \
         restrict  decoded {:>8.1} MiB/s   raw   {:>8.1} MiB/s   speedup {:.2}x\n  \
         project   decoded {:>8.1} MiB/s   raw   {:>8.1} MiB/s   speedup {:.2}x\n  \
         span      stepwise {:>7.1} MiB/s   fused {:>8.1} MiB/s   speedup {:.2}x",
        rel.pages().len(),
        in_bytes / 1024,
        restrict_decoded,
        restrict_raw,
        restrict_raw / restrict_decoded,
        project_decoded,
        project_raw,
        project_raw / project_decoded,
        span_stepwise,
        span_fused,
        span_fused / span_stepwise,
    );

    // End to end on the real-threads executor: both modes must agree on
    // every answer (deterministic canonical pages) while pipeline mode
    // moves strictly fewer bytes on this chain-bearing suite.
    let mut rows = Vec::new();
    let mut counters: Vec<(String, f64)> = Vec::new();
    println!(
        "host (ten pipeline-bearing queries, {} workers):",
        HostParams::default().workers
    );
    for join in JoinAlgo::ALL {
        let mut bytes_by_mode = Vec::new();
        for transfer in TransferMode::ALL {
            let params = HostParams {
                page_size: 4096,
                join,
                transfer,
                deterministic: true,
                ..HostParams::default()
            };
            let out = run_host_queries(&s.db, &queries, &params).expect("host run");
            let m = &out.metrics;
            println!(
                "  {join:<6} {transfer:<11}  elapsed {:>8.2?}  units {:>6} (spans {:>6})  \
                 moved {:>9.1} KB",
                m.elapsed,
                m.total_units(),
                m.total_kernel_spans(),
                m.total_bytes() as f64 / 1024.0
            );
            rows.push(SweepRow {
                label: format!("host_{join}_{transfer}"),
                values: vec![
                    ("elapsed_secs".into(), m.elapsed.as_secs_f64()),
                    ("units".into(), m.total_units() as f64),
                    ("kernel_spans".into(), m.total_kernel_spans() as f64),
                    ("bytes_moved".into(), m.total_bytes() as f64),
                ],
            });
            counters.push((
                format!("host_bytes_{join}_{transfer}"),
                m.total_bytes() as f64,
            ));
            bytes_by_mode.push(m.total_bytes());
        }
        assert!(
            bytes_by_mode[1] < bytes_by_mode[0],
            "pipeline mode must move strictly fewer bytes than materialize \
             ({} vs {}, {join} join)",
            bytes_by_mode[1],
            bytes_by_mode[0],
        );
        println!(
            "  {join:<6} saved: {:.1} KB of intermediate-page traffic ({:.1}%)",
            (bytes_by_mode[0] - bytes_by_mode[1]) as f64 / 1024.0,
            100.0 * (bytes_by_mode[0] - bytes_by_mode[1]) as f64 / bytes_by_mode[0] as f64,
        );
    }

    // Ring machine: the eliminated intermediate pages are outer-ring
    // traffic; keep the per-path bandwidth-demand curves of both modes.
    println!("ring (8 ICs x 30 IPs):");
    let mut series = Vec::new();
    let mut ring_bytes = Vec::new();
    for transfer in TransferMode::ALL {
        let mut params = fig42_params(&s, 30);
        params.transfer = transfer;
        let m = run_ring_queries(&s.db, &queries, &params)
            .expect("ring run")
            .metrics;
        println!(
            "  {transfer:<11}  elapsed {:>8.3}s  outer ring {:>8} KB ({:>6.2} Mbps)",
            m.elapsed.as_secs_f64(),
            m.outer_ring.bytes / 1024,
            m.outer_ring_mbps(),
        );
        rows.push(SweepRow {
            label: format!("ring_{transfer}"),
            values: vec![
                ("elapsed_secs".into(), m.elapsed.as_secs_f64()),
                ("outer_ring_bytes".into(), m.outer_ring.bytes as f64),
                ("outer_ring_mbps".into(), m.outer_ring_mbps()),
            ],
        });
        for (path, curve) in m.bandwidth_series() {
            if let Some(mut r) = series_row(path, curve) {
                r.path = format!("{transfer}/{path}");
                series.push(r);
            }
        }
        ring_bytes.push(m.outer_ring.bytes);
    }
    assert!(
        ring_bytes[1] < ring_bytes[0],
        "pipeline mode must shrink outer-ring traffic ({} vs {})",
        ring_bytes[1],
        ring_bytes[0],
    );

    let mut a = sweep_artifact("pipeline", rows);
    a.param("scale", scale)
        .param("page_size", 4096)
        .param("queries", queries.len());
    a.series = series;
    for (key, v) in counters {
        a.counter(&key, v);
    }
    a.counter("ring_outer_bytes_materialize", ring_bytes[0] as f64)
        .counter("ring_outer_bytes_pipeline", ring_bytes[1] as f64)
        .counter(
            "ring_outer_bytes_saved",
            (ring_bytes[0] - ring_bytes[1]) as f64,
        )
        .counter("restrict_raw_mibps", restrict_raw)
        .counter("project_raw_mibps", project_raw)
        .counter("span_stepwise_mibps", span_stepwise)
        .counter("span_fused_mibps", span_fused);
    emit(json_dir, &a);
    println!("deviation from the paper (DESIGN.md §5, §7): spans skip per-cell materialization\n");
}

/// FIG-3.1: page vs relation granularity over a processor sweep.
fn fig3_1(s: &BenchSetup, json_dir: Option<&Path>) {
    println!("--- FIG-3.1: benchmark execution time, relation vs page granularity");
    println!(
        "{:>6} {:>12} {:>12} {:>7} {:>14} {:>14}",
        "procs", "relation", "page", "ratio", "rel disk KB", "page disk KB"
    );
    let mut rows = Vec::new();
    let mut last_page = None;
    for procs in [4usize, 8, 16, 24, 32, 48, 64] {
        let params = fig31_params(s, procs);
        let rel = run_core(s, &params, Granularity::Relation);
        let page = run_core(s, &params, Granularity::Page);
        println!(
            "{:>6} {:>11.3}s {:>11.3}s {:>7.2} {:>14} {:>14}",
            procs,
            rel.elapsed.as_secs_f64(),
            page.elapsed.as_secs_f64(),
            rel.elapsed.as_secs_f64() / page.elapsed.as_secs_f64(),
            (rel.disk_read.bytes + rel.disk_write.bytes) / 1024,
            (page.disk_read.bytes + page.disk_write.bytes) / 1024,
        );
        rows.push(SweepRow {
            label: format!("procs={procs}"),
            values: vec![
                ("relation_secs".into(), rel.elapsed.as_secs_f64()),
                ("page_secs".into(), page.elapsed.as_secs_f64()),
                (
                    "rel_disk_bytes".into(),
                    (rel.disk_read.bytes + rel.disk_write.bytes) as f64,
                ),
                (
                    "page_disk_bytes".into(),
                    (page.disk_read.bytes + page.disk_write.bytes) as f64,
                ),
            ],
        });
        last_page = Some(page);
    }
    emit(json_dir, &sweep_artifact("fig3_1", rows));
    if let Some(m) = last_page {
        // Bandwidth-demand curves of the widest page-granularity run.
        emit(
            json_dir,
            &df_bench::report::core_artifact("fig3_1_series", &m),
        );
    }
    println!("paper: page-level outperforms relation-level by a factor of about two\n");
}

/// SEC-3.3: tuple vs page arbitration-network bytes, closed form + measured.
fn sec3_3() {
    println!("--- SEC-3.3: arbitration network traffic, tuple vs page granularity");
    println!("closed form (n = m = 1000 tuples of 100 B, 10 tuples/page):");
    println!(
        "{:>6} {:>16} {:>16} {:>7}",
        "c", "tuple bytes", "page bytes", "ratio"
    );
    for c in [0usize, 32, 50, 100, 200] {
        let t = bandwidth::tuple_level_join_bytes(1000, 1000, 100, c);
        let p = bandwidth::page_level_join_bytes(1000, 1000, 100, 10, c);
        println!("{:>6} {:>16} {:>16} {:>7.2}", c, t, p, t as f64 / p as f64);
    }

    // Measured on the simulator: one unrestricted join at 10% scale (a
    // full-scale tuple-granularity join would schedule ~10^8 tuple pairs).
    let db = generate_database(&df_workload::DatabaseSpec::scaled(0.1));
    let q = chain_query(&db, 15, 9, 1, 0, VAL_DOMAIN).expect("join");
    let mut params = MachineParams::with_processors(16);
    params.broadcast_join = false;
    params.max_inner_batch = 1; // one (outer, inner) pair per packet: §3.3's setting
    params.cache.frames = 2048;
    let run = |g| {
        run_queries(
            &db,
            std::slice::from_ref(&q),
            &params,
            g,
            AllocationStrategy::default(),
        )
        .expect("runs")
        .metrics
    };
    let tuple = run(Granularity::Tuple);
    let page = run(Granularity::Page);
    let (n, m) = (
        db.get("r09").unwrap().num_tuples(),
        db.get("r10").unwrap().num_tuples(),
    );
    println!(
        "measured (join of r09 x r10, n={n}, m={m}, c={}, broadcast off):",
        params.packet_overhead
    );
    println!(
        "  tuple: {:>12} B in {:>10} packets   elapsed {:>9.3}s",
        tuple.arbitration.bytes,
        tuple.arbitration.transfers,
        tuple.elapsed.as_secs_f64()
    );
    println!(
        "  page : {:>12} B in {:>10} packets   elapsed {:>9.3}s",
        page.arbitration.bytes,
        page.arbitration.transfers,
        page.elapsed.as_secs_f64()
    );
    println!(
        "  measured ratio {:.2} (paper's closed form at these sizes: {:.2})\n",
        tuple.arbitration.bytes as f64 / page.arbitration.bytes as f64,
        bandwidth::tuple_over_page_ratio(n, m, 100, 10, params.packet_overhead)
    );
}

/// FIG-4.2: ring-machine bandwidth demand vs number of IPs.
fn fig4_2(s: &BenchSetup, json_dir: Option<&Path>) {
    println!("--- FIG-4.2: average bandwidth vs number of instruction processors");
    println!(
        "{:>5} {:>10} {:>12} {:>12} {:>12} {:>12} {:>7}",
        "IPs", "elapsed", "outer ring", "inner ring", "cache", "disk", "util"
    );
    let mut rows = Vec::new();
    for ips in [5usize, 10, 20, 30, 50, 75, 100] {
        let params = fig42_params(s, ips);
        let m = run_ring(s, &params);
        println!(
            "{:>5} {:>9.3}s {:>8.2} Mbps {:>8.3} Mbps {:>8.2} Mbps {:>8.2} Mbps {:>6.1}%",
            ips,
            m.elapsed.as_secs_f64(),
            m.outer_ring_mbps(),
            m.inner_ring_mbps(),
            m.cache_mbps(),
            m.disk_mbps(),
            m.ip_utilization() * 100.0
        );
        rows.push(SweepRow {
            label: format!("ips={ips}"),
            values: vec![
                ("elapsed_secs".into(), m.elapsed.as_secs_f64()),
                ("outer_ring_mbps".into(), m.outer_ring_mbps()),
                ("inner_ring_mbps".into(), m.inner_ring_mbps()),
                ("cache_mbps".into(), m.cache_mbps()),
                ("disk_mbps".into(), m.disk_mbps()),
                ("ip_utilization".into(), m.ip_utilization()),
            ],
        });
        if ips == 30 {
            // Demand *curves* (not just the averages above) for the paper's
            // headline 30-IP configuration.
            emit(json_dir, &ring_artifact("fig4_2_series", &params, &m));
        }
    }
    emit(json_dir, &sweep_artifact("fig4_2", rows));
    println!("paper: 40 Mbps sufficient for up to 50 IPs; ~100 Mbps for larger configurations\n");
}

/// ABL-PGSZ: page-size sweep (§3.3's 1 KB vs 10 KB discussion).
fn abl_pgsz(s: &BenchSetup) {
    println!("--- ABL-PGSZ: page-size sweep (page granularity, 16 processors)");
    println!(
        "{:>8} {:>10} {:>14} {:>10}",
        "page B", "elapsed", "arb net KB", "units"
    );
    for page_size in [1016usize, 2016, 4016, 10_016, 16_016] {
        let mut spec = s.spec.clone();
        spec.database.page_size = page_size;
        let db = generate_database(&spec.database);
        let queries = benchmark_queries(&db, &spec).expect("queries");
        let mut params = fig31_params(s, 16);
        params.page_size = page_size;
        params.cache.frames = (db.total_bytes() / page_size / 5).max(16);
        let m = run_queries(
            &db,
            &queries,
            &params,
            Granularity::Page,
            AllocationStrategy::default(),
        )
        .expect("runs")
        .metrics;
        println!(
            "{:>8} {:>9.3}s {:>14} {:>10}",
            page_size,
            m.elapsed.as_secs_f64(),
            m.arbitration.bytes / 1024,
            m.units_dispatched
        );
    }
    println!("paper: larger pages cut network traffic but may reduce concurrency\n");
}

/// ABL-ALLOC: the four processor-assignment strategies.
fn abl_alloc(s: &BenchSetup) {
    println!("--- ABL-ALLOC: processor-assignment strategies (16 processors, page level)");
    let params = fig31_params(s, 16);
    for strategy in AllocationStrategy::ALL {
        let m = run_queries(&s.db, &s.queries, &params, Granularity::Page, strategy)
            .expect("runs")
            .metrics;
        println!(
            "{:<24} elapsed={:8.3}s  mean-response={:8.3}s  util={:4.1}%",
            strategy.to_string(),
            m.elapsed.as_secs_f64(),
            m.mean_response().as_secs_f64(),
            m.processor_utilization() * 100.0
        );
    }
    println!("[4]: the data-flow (balanced) strategy wins\n");
}

/// ABL-BCAST: broadcast facility on/off.
fn abl_bcast(s: &BenchSetup) {
    println!("--- ABL-BCAST: join broadcast facility (16 processors, page level)");
    for broadcast in [true, false] {
        let mut params = fig31_params(s, 16);
        params.broadcast_join = broadcast;
        let m = run_core(s, &params, Granularity::Page);
        println!(
            "broadcast={:<5} elapsed={:8.3}s  arb={:>9} KB ({:>8} packets)  cache-out={:>9} KB",
            broadcast,
            m.elapsed.as_secs_f64(),
            m.arbitration.bytes / 1024,
            m.arbitration.transfers,
            m.cache_out.bytes / 1024
        );
    }
    println!("paper requirement 4: broadcast minimizes data movement for joins\n");
}

/// ABL-PROJ: §5's open problem — parallel duplicate elimination via hash
/// partitioning of the blocking finalizer.
fn abl_proj() {
    println!("--- ABL-PROJ: hash-partitioned duplicate-eliminating projection (16 processors)");
    let db = generate_database(&df_workload::DatabaseSpec::paper());
    let q = df_query::parse_query(
        &db,
        "(project-distinct (restrict (scan r00) true) (fk val))",
    )
    .expect("query");
    let run = |buckets: usize| {
        let mut params = MachineParams::with_processors(16);
        params.dedup_buckets = buckets;
        params.cache.frames = 4096;
        run_queries(
            &db,
            std::slice::from_ref(&q),
            &params,
            Granularity::Page,
            AllocationStrategy::default(),
        )
        .expect("runs")
        .metrics
    };
    let tail_of = |m: &df_core::Metrics| -> f64 {
        let restrict_done = m
            .instructions
            .iter()
            .find(|i| i.op_name == "restrict")
            .and_then(|i| i.completed)
            .expect("restrict ran");
        let project_done = m
            .instructions
            .iter()
            .find(|i| i.op_name == "project")
            .and_then(|i| i.completed)
            .expect("project ran");
        project_done.saturating_since(restrict_done).as_secs_f64()
    };
    let serial_tail = tail_of(&run(1));
    for buckets in [1usize, 2, 4, 8, 16] {
        let m = run(buckets);
        let tail = tail_of(&m);
        println!(
            "buckets={buckets:2}  blocking tail={tail:8.3}s (speedup {:4.2}x)  total={:8.3}s",
            serial_tail / tail.max(1e-9),
            m.elapsed.as_secs_f64()
        );
    }
    println!("paper §5: no parallel algorithm known; hash partitioning answers it\n");
}

/// ABL-MULTI: multi-user operation (requirement 1) — mean response time of
/// an open Poisson stream of benchmark queries vs the offered load.
fn abl_multi() {
    use df_sim::rng::SimRng;
    println!(
        "--- ABL-MULTI: open multi-user stream on the ring machine (8 ICs x 30 IPs, 16 KB pages)"
    );
    let s16 = setup_with_page_size(0.3, 16 * 1024);
    println!(
        "{:>14} {:>12} {:>14} {:>10}",
        "mean gap", "elapsed", "mean response", "CC delays"
    );
    for mean_gap in [4.0f64, 2.0, 1.0, 0.5, 0.25] {
        let mut rng = SimRng::new(0xa11d);
        let arrivals = df_workload::poisson_arrivals(s16.queries.len(), mean_gap, &mut rng);
        let params = fig42_params(&s16, 30);
        let out = df_ring::run_ring_queries_at(&s16.db, &s16.queries, &arrivals, &params)
            .expect("stream runs");
        let responses = out.metrics.response_times();
        let mean_resp: f64 =
            responses.iter().map(|d| d.as_secs_f64()).sum::<f64>() / responses.len() as f64;
        println!(
            "{:>12.2} s {:>11.3}s {:>13.3}s {:>10}",
            mean_gap,
            out.metrics.elapsed.as_secs_f64(),
            mean_resp,
            out.metrics.queries_delayed_by_cc
        );
    }
    println!(
        "requirement 1: the machine absorbs an open stream; response degrades as load rises\n"
    );
}

/// ABL-ROUTE: §5 direct IP→IP routing on the ring machine (run in the
/// Figure-4.2 configuration: 16 KB pages, where the store-and-forward
/// baseline is healthy and the comparison isolates the routing change).
fn abl_route(_s: &BenchSetup) {
    println!(
        "--- ABL-ROUTE: direct IP->IP result routing (ring machine, 8 ICs x 30 IPs, 16 KB pages)"
    );
    let s16 = setup_with_page_size(1.0, 16 * 1024);
    for direct in [false, true] {
        let mut params = fig42_params(&s16, 30);
        params.direct_routing = direct;
        let m = run_ring(&s16, &params);
        println!(
            "direct={:<5} elapsed={:8.3}s  outer ring={:>9} KB ({:5.2} Mbps)  direct pages={}",
            direct,
            m.elapsed.as_secs_f64(),
            m.outer_ring.bytes / 1024,
            m.outer_ring_mbps(),
            m.direct_routed_pages
        );
    }
    println!("paper §5: direct routing should further reduce outer-ring traffic\n");
}

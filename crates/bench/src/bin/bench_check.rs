//! Compare two `BENCH_<name>.json` artifacts and fail on regressions.
//!
//! ```sh
//! # CI gate: candidate vs committed baseline, deterministic counters only
//! bench_check --counters-only baseline.json candidate.json
//!
//! # Local gate: same machine, timings count (default +25% tolerance)
//! bench_check --max-regression 0.10 base.json cand.json
//!
//! # Single-artifact mode: internal metric invariants only
//! bench_check --check BENCH_host_smoke.json
//! ```
//!
//! Exit status: 0 when every check passes, 1 on any failure, 2 on usage or
//! I/O errors. Failures are listed one per line on stdout.

use df_obs::{BenchArtifact, CompareOptions};

fn main() {
    let mut opts = CompareOptions::default();
    let mut check_only = false;
    let mut files: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--max-regression" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| die("--max-regression needs a value"));
                opts.max_regression = v
                    .parse()
                    .unwrap_or_else(|_| die(&format!("bad value `{v}` for --max-regression")));
            }
            "--counters-only" => opts.counters_only = true,
            "--check" => check_only = true,
            other if other.starts_with("--") => die(&format!("unknown flag `{other}`")),
            other => files.push(other.to_string()),
        }
    }

    let failures = if check_only {
        if files.len() != 1 {
            die("--check mode takes exactly one artifact");
        }
        let a = load(&files[0]);
        println!("bench_check: {} ({}, kind {})", files[0], a.name, a.kind);
        a.check()
    } else {
        if files.len() != 2 {
            die("expected BASELINE and CANDIDATE artifact paths");
        }
        let base = load(&files[0]);
        let cand = load(&files[1]);
        println!(
            "bench_check: {} -> {} (kind {}, {})",
            files[0],
            files[1],
            base.kind,
            if opts.counters_only {
                "counters only".to_string()
            } else {
                format!("max regression {:.0}%", opts.max_regression * 100.0)
            }
        );
        // A candidate that violates its own invariants fails even if it
        // happens to match the baseline.
        let mut f = cand.check();
        f.extend(BenchArtifact::compare(&base, &cand, &opts));
        f
    };

    if failures.is_empty() {
        println!("bench_check: PASS");
    } else {
        for f in &failures {
            println!("bench_check: FAIL: {f}");
        }
        std::process::exit(1);
    }
}

fn load(path: &str) -> BenchArtifact {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
    BenchArtifact::from_json(&text).unwrap_or_else(|e| die(&format!("{path}: {e}")))
}

fn die(msg: &str) -> ! {
    eprintln!("bench_check: {msg}");
    std::process::exit(2);
}

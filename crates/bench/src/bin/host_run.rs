//! Run the ten-query benchmark on the real-threads executor (`df-host`).
//!
//! ```sh
//! cargo run --release -p df-bench --bin host_run -- \
//!     --workers 8 --alloc balanced --scale 0.5 --page-size 4096 --verify
//! ```
//!
//! Flags (all optional):
//! - `--workers N`     worker threads (default: all cores)
//! - `--alloc S`       allocation strategy: `instruction-at-a-time`,
//!   `round-robin`, `balanced`, `root-first`
//! - `--scale F`       database scale factor (1.0 = the paper's 5.5 MB)
//! - `--page-size B`   page size in bytes for source and intermediate pages
//! - `--join A`        join algorithm: `nested` (the paper's nested loops,
//!   default) or `hash` (per-page raw-byte key indexes)
//! - `--deterministic` canonicalize results (byte-stable across runs)
//! - `--verify`        check every result against the sequential oracle

use df_bench::setup_with_page_size;
use df_host::{run_host_queries, HostParams};
use df_query::{execute_readonly, ExecParams};

fn main() {
    let mut params = HostParams::default();
    let mut scale = 0.5f64;
    let mut verify = false;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| die(&format!("{flag} needs a value")))
        };
        match flag.as_str() {
            "--workers" => params.workers = parse(&value("--workers"), "--workers"),
            "--alloc" => {
                params.strategy = value("--alloc").parse().unwrap_or_else(|e: String| die(&e));
            }
            "--scale" => scale = parse(&value("--scale"), "--scale"),
            "--page-size" => params.page_size = parse(&value("--page-size"), "--page-size"),
            "--join" => {
                params.join = value("--join").parse().unwrap_or_else(|e: String| die(&e));
            }
            "--deterministic" => params.deterministic = true,
            "--verify" => verify = true,
            other => die(&format!(
                "unknown flag `{other}` (see --help in the source)"
            )),
        }
    }

    println!(
        "host_run: scale {scale}, page size {}, {} workers, {} strategy, {} join",
        params.page_size, params.workers, params.strategy, params.join
    );
    let s = setup_with_page_size(scale, params.page_size);
    println!(
        "database: {} relations, {} bytes, {} tuples",
        s.db.len(),
        s.db.total_bytes(),
        s.db.total_tuples()
    );

    let out = run_host_queries(&s.db, &s.queries, &params).expect("host run");
    println!(
        "\n{:>5} {:>10} {:>8} {:>7} {:>7} {:>12} {:>12}",
        "query", "tuples", "units", "probes", "sweeps", "pages moved", "elapsed"
    );
    for (i, q) in out.metrics.per_query.iter().enumerate() {
        println!(
            "{:>5} {:>10} {:>8} {:>7} {:>7} {:>12} {:>10.2?}",
            format!("Q{}", i + 1),
            q.result_tuples,
            q.units_fired,
            q.probe_units,
            q.sweep_units,
            q.pages_moved,
            q.elapsed
        );
    }
    println!(
        "\nbatch: {:.2?} wall, {} units, {:.1} MB moved, {:.1}% mean worker utilization",
        out.metrics.elapsed,
        out.metrics.total_units(),
        out.metrics.total_bytes() as f64 / 1e6,
        out.metrics.worker_utilization() * 100.0
    );
    for (i, w) in out.metrics.per_worker.iter().enumerate() {
        println!(
            "  worker {i:>2}: {:>6} units, busy {:>10.2?} of {:>10.2?} ({:>4.1}%)",
            w.units,
            w.busy,
            w.wall,
            w.utilization() * 100.0
        );
    }

    if verify {
        let oracle = ExecParams {
            page_size: params.page_size,
            ..ExecParams::default()
        };
        for (i, (query, got)) in s.queries.iter().zip(&out.results).enumerate() {
            let want = execute_readonly(&s.db, query, &oracle).expect("oracle run");
            assert!(
                got.same_contents(&want),
                "Q{} diverged from the oracle: {} tuples vs {}",
                i + 1,
                got.num_tuples(),
                want.num_tuples()
            );
        }
        println!(
            "verify: all {} results match the sequential oracle",
            s.queries.len()
        );
    }
}

fn parse<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse()
        .unwrap_or_else(|_| die(&format!("bad value `{s}` for {flag}")))
}

fn die(msg: &str) -> ! {
    eprintln!("host_run: {msg}");
    std::process::exit(2);
}

//! Run the ten-query benchmark on the real-threads executor (`df-host`).
//!
//! ```sh
//! cargo run --release -p df-bench --bin host_run -- \
//!     --workers 8 --alloc balanced --scale 0.5 --page-size 4096 --verify
//! ```
//!
//! Flags (all optional):
//! - `--workers N`     worker threads (default: all cores)
//! - `--alloc S`       allocation strategy: `instruction-at-a-time`,
//!   `round-robin`, `balanced`, `root-first`
//! - `--scale F`       database scale factor (1.0 = the paper's 5.5 MB)
//! - `--page-size B`   page size in bytes for source and intermediate pages
//! - `--join A`        join algorithm: `nested` (the paper's nested loops,
//!   default) or `hash` (per-page raw-byte key indexes)
//! - `--transfer T`    transfer mode: `materialize` (every cell pages its
//!   own output, default) or `pipeline` (restrict→project chains fused
//!   into spans — intermediate pages never cross the network)
//! - `--deterministic` canonicalize results (byte-stable across runs)
//! - `--verify`        check every successful result against the oracle
//!
//! Observability (DESIGN.md §7):
//! - `--json FILE`      write a `BENCH_*.json` artifact of the run
//! - `--name N`         artifact name (default `host`)
//! - `--trace-out FILE` install a tracer and dump its event snapshot
//!
//! Fault injection (all deterministic; see `df_host::FaultPlan`):
//! - `--fault-panic N`        panic the kernel of dispatched unit N
//! - `--fault-panic-rate P`   panic each unit with probability P (seeded)
//! - `--fault-seed S`         seed for `--fault-panic-rate` draws
//! - `--fault-delay-every N`  sleep before every Nth unit's kernel
//! - `--fault-delay-ms M`     the injected sleep (default 1 ms)
//! - `--fault-dead-worker I`  worker I dies at start (repeatable)

use std::sync::Arc;
use std::time::Duration;

use df_bench::report::host_artifact;
use df_bench::setup_with_page_size;
use df_host::{run_host_queries, HostParams};
use df_obs::Tracer;
use df_query::{execute_readonly, ExecParams};

fn main() {
    let mut params = HostParams::default();
    let mut scale = 0.5f64;
    let mut verify = false;
    let mut json_out: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut name = "host".to_string();

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| die(&format!("{flag} needs a value")))
        };
        match flag.as_str() {
            "--workers" => params.workers = parse(&value("--workers"), "--workers"),
            "--alloc" => {
                params.strategy = value("--alloc").parse().unwrap_or_else(|e: String| die(&e));
            }
            "--scale" => scale = parse(&value("--scale"), "--scale"),
            "--page-size" => params.page_size = parse(&value("--page-size"), "--page-size"),
            "--join" => {
                params.join = value("--join").parse().unwrap_or_else(|e: String| die(&e));
            }
            "--transfer" => {
                params.transfer = value("--transfer")
                    .parse()
                    .unwrap_or_else(|e: String| die(&e));
            }
            "--deterministic" => params.deterministic = true,
            "--verify" => verify = true,
            "--json" => json_out = Some(value("--json")),
            "--name" => name = value("--name"),
            "--trace-out" => trace_out = Some(value("--trace-out")),
            "--fault-panic" => {
                params.fault.panic_on_unit = Some(parse(&value("--fault-panic"), "--fault-panic"));
            }
            "--fault-panic-rate" => {
                params.fault.panic_rate = parse(&value("--fault-panic-rate"), "--fault-panic-rate");
            }
            "--fault-seed" => params.fault.seed = parse(&value("--fault-seed"), "--fault-seed"),
            "--fault-delay-every" => {
                params.fault.delay_every =
                    Some(parse(&value("--fault-delay-every"), "--fault-delay-every"));
                if params.fault.delay.is_zero() {
                    params.fault.delay = Duration::from_millis(1);
                }
            }
            "--fault-delay-ms" => {
                params.fault.delay =
                    Duration::from_millis(parse(&value("--fault-delay-ms"), "--fault-delay-ms"));
            }
            "--fault-dead-worker" => params
                .fault
                .dead_workers
                .push(parse(&value("--fault-dead-worker"), "--fault-dead-worker")),
            other => die(&format!(
                "unknown flag `{other}` (see --help in the source)"
            )),
        }
    }

    if params.fault.panic_on_unit.is_some() || params.fault.panic_rate > 0.0 {
        quiet_worker_panics();
    }
    if trace_out.is_some() {
        params.trace = Some(Arc::new(Tracer::new(Tracer::DEFAULT_CAPACITY)));
    }

    println!(
        "host_run: scale {scale}, page size {}, {} workers, {} strategy, {} join, {} transfer{}",
        params.page_size,
        params.workers,
        params.strategy,
        params.join,
        params.transfer,
        if params.fault.is_active() {
            " [fault injection active]"
        } else {
            ""
        }
    );
    let s = setup_with_page_size(scale, params.page_size);
    println!(
        "database: {} relations, {} bytes, {} tuples",
        s.db.len(),
        s.db.total_bytes(),
        s.db.total_tuples()
    );

    let out = run_host_queries(&s.db, &s.queries, &params)
        .unwrap_or_else(|e| die(&format!("host run failed: {e}")));
    println!(
        "\n{:>5} {:>10} {:>8} {:>7} {:>7} {:>12} {:>12}",
        "query", "tuples", "units", "probes", "sweeps", "pages moved", "elapsed"
    );
    for (i, q) in out.metrics.per_query.iter().enumerate() {
        match &out.results[i] {
            Ok(_) => println!(
                "{:>5} {:>10} {:>8} {:>7} {:>7} {:>12} {:>10.2?}",
                format!("Q{}", i + 1),
                q.result_tuples,
                q.units_fired,
                q.probe_units,
                q.sweep_units,
                q.pages_moved,
                q.elapsed
            ),
            Err(e) => println!("{:>5}     FAILED: {e}", format!("Q{}", i + 1)),
        }
    }
    println!(
        "\nbatch: {:.2?} wall, {} units, {:.1} MB moved, {:.1}% mean worker utilization",
        out.metrics.elapsed,
        out.metrics.total_units(),
        out.metrics.total_bytes() as f64 / 1e6,
        out.metrics.worker_utilization() * 100.0
    );
    for (i, w) in out.metrics.per_worker.iter().enumerate() {
        println!("  {}", w.summary_row(i));
    }
    if params.fault.is_active() {
        let failed = out.results.iter().filter(|r| r.is_err()).count();
        let requeued: usize = out.metrics.per_query.iter().map(|q| q.requeued_units).sum();
        println!(
            "faults: {} kernel panics contained, {} workers lost, \
             {requeued} units requeued, {failed}/{} queries failed",
            out.metrics.total_panics(),
            out.metrics.workers_lost(),
            s.queries.len()
        );
    }

    if verify {
        let oracle = ExecParams {
            page_size: params.page_size,
            ..ExecParams::default()
        };
        let mut checked = 0usize;
        for (i, (query, got)) in s.queries.iter().zip(&out.results).enumerate() {
            let Ok(got) = got else { continue };
            let want = execute_readonly(&s.db, query, &oracle).expect("oracle run");
            assert!(
                got.same_contents(&want),
                "Q{} diverged from the oracle: {} tuples vs {}",
                i + 1,
                got.num_tuples(),
                want.num_tuples()
            );
            checked += 1;
        }
        println!(
            "verify: all {checked} successful results match the sequential oracle ({} failed)",
            s.queries.len() - checked
        );
    }

    if let Some(path) = &json_out {
        let artifact = host_artifact(&name, scale, &params, &out);
        if let problems @ [_, ..] = &artifact.check()[..] {
            for p in problems {
                eprintln!("host_run: artifact invariant violated: {p}");
            }
            die("refusing to write an unsound artifact");
        }
        std::fs::write(path, artifact.to_json())
            .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
        println!("json: wrote {path} (artifact `{name}`)");
    }
    if let (Some(path), Some(tracer)) = (&trace_out, &params.trace) {
        let snap = tracer.snapshot();
        let events = snap.events.len();
        let dropped = snap.dropped;
        std::fs::write(path, snap.to_json())
            .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
        println!("trace: wrote {path} ({events} events, {dropped} dropped)");
    }
}

/// Injected kernel panics are expected; keep their backtraces out of the
/// report. Panics on any other thread still print normally.
fn quiet_worker_panics() {
    let default = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let on_worker = std::thread::current()
            .name()
            .is_some_and(|n| n.starts_with("df-host-worker"));
        if !on_worker {
            default(info);
        }
    }));
}

fn parse<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse()
        .unwrap_or_else(|_| die(&format!("bad value `{s}` for {flag}")))
}

fn die(msg: &str) -> ! {
    eprintln!("host_run: {msg}");
    std::process::exit(2);
}

//! Shared helpers for the benchmark harness: standard configurations and
//! the experiment table printers used by both the Criterion benches and the
//! `experiments` binary.
//!
//! The Criterion benches (`benches/`) run reduced-scale configurations so
//! `cargo bench --workspace` finishes in minutes; the `experiments` binary
//! (`src/bin/experiments.rs`) runs the paper-scale versions and prints the
//! tables recorded in `EXPERIMENTS.md`.

pub mod loadgen;
pub mod report;

use df_core::{run_queries, AllocationStrategy, Granularity, JoinAlgo, MachineParams, Metrics};
use df_host::{run_host_queries, HostParams, HostRunOutput};
use df_query::QueryTree;
use df_relalg::Catalog;
use df_ring::{run_ring_queries, RingMetrics, RingParams};
use df_workload::{benchmark_queries, generate_database, BenchmarkSpec};

/// A ready-to-run benchmark instance: database + the ten queries.
pub struct BenchSetup {
    /// The generated database.
    pub db: Catalog,
    /// The ten-query benchmark.
    pub queries: Vec<QueryTree>,
    /// The spec it was generated from.
    pub spec: BenchmarkSpec,
    /// Join algorithm the derived machine configurations run with
    /// (default nested loops, the paper's choice).
    pub join: JoinAlgo,
}

/// Build the benchmark at `scale` (1.0 = the paper's 5.5 MB database).
pub fn setup(scale: f64) -> BenchSetup {
    setup_with_page_size(scale, 1016)
}

/// Build the benchmark with a specific page size for both the stored
/// database and the machines. Figure 4.2 assumes "16K byte operands", which
/// means the *source relations* are paged at 16 KB too.
pub fn setup_with_page_size(scale: f64, page_size: usize) -> BenchSetup {
    let mut spec = if scale >= 1.0 {
        BenchmarkSpec::paper()
    } else {
        BenchmarkSpec::scaled(scale)
    };
    spec.database.page_size = page_size;
    let db = generate_database(&spec.database);
    let queries = benchmark_queries(&db, &spec).expect("benchmark queries build");
    BenchSetup {
        db,
        queries,
        spec,
        join: JoinAlgo::default(),
    }
}

/// The machine configuration used for Figure 3.1 style experiments: cache
/// at roughly one third of the database — the moderate-pressure regime in
/// which relation-level materialization spills intermediates to disk while
/// page-level pipelining's working sets still fit (harsher caches start
/// thrashing page-level too and the gap collapses; see the calibration
/// notes in EXPERIMENTS.md).
pub fn fig31_params(setup: &BenchSetup, processors: usize) -> MachineParams {
    let mut p = MachineParams::with_processors(processors);
    let db_pages = setup.db.total_bytes() / p.page_size;
    p.cache.frames = (db_pages / 3).max(16);
    p.join_algo = setup.join;
    p
}

/// Run the benchmark batch on the df-core machine.
pub fn run_core(setup: &BenchSetup, params: &MachineParams, g: Granularity) -> Metrics {
    run_queries(
        &setup.db,
        &setup.queries,
        params,
        g,
        AllocationStrategy::default(),
    )
    .expect("benchmark batch runs")
    .metrics
}

/// Run the benchmark batch on the real-threads host executor. Panics if
/// the *run* fails (bad parameters, stall); per-query faults — possible
/// when `params.fault` is active — stay in [`HostRunOutput::results`] for
/// the caller to inspect.
pub fn run_host(setup: &BenchSetup, params: &HostParams) -> HostRunOutput {
    run_host_queries(&setup.db, &setup.queries, params).expect("host benchmark runs")
}

/// Run the benchmark batch on the ring machine.
pub fn run_ring(setup: &BenchSetup, params: &RingParams) -> RingMetrics {
    run_ring_queries(&setup.db, &setup.queries, params)
        .expect("ring benchmark runs")
        .metrics
}

/// Ring configuration for Figure 4.2: 16 KB operand pages (the figure's
/// stated assumption), a cache sized to hold the working database, and no
/// concurrency control (the benchmark is read-only).
pub fn fig42_params(setup: &BenchSetup, ips: usize) -> RingParams {
    let mut p = RingParams::with_pools(8, ips);
    p.page_size = setup.spec.database.page_size;
    let db_pages = setup.db.total_bytes() / p.page_size;
    p.cache.frames = (db_pages * 2).max(64);
    p.ic_memory_pages = 32;
    p.ip_memory_pages = 4;
    p.concurrency_control = false;
    p.join_algo = setup.join;
    // The "soon afterwards" window must cover a worst-case 16 KB page
    // transit (RingParams::validate enforces it).
    p.rebroadcast_window = p.outer_transit(p.page_size + 64).saturating_mul(2);
    p
}

/// Render one experiment row: label plus name=value pairs.
pub fn row(label: &str, fields: &[(&str, String)]) -> String {
    let mut s = format!("{label:<24}");
    for (k, v) in fields {
        s.push_str(&format!("  {k}={v}"));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn setup_builds_at_small_scale() {
        let s = setup(0.01);
        assert_eq!(s.db.len(), 15);
        assert_eq!(s.queries.len(), 10);
        let params = fig31_params(&s, 4);
        assert!(params.cache.frames >= 16);
    }

    #[test]
    fn core_and_ring_smoke() {
        let s = setup(0.01);
        let m = run_core(&s, &fig31_params(&s, 4), Granularity::Page);
        assert!(m.elapsed.as_nanos() > 0);
        let mut rp = RingParams::with_pools(2, 4);
        rp.cache.frames = 128;
        let rm = run_ring(&s, &rp);
        assert!(rm.elapsed.as_nanos() > 0);
    }

    #[test]
    fn row_formats() {
        let r = row("test", &[("a", "1".into()), ("b", "x".into())]);
        assert!(r.contains("a=1") && r.contains("b=x"));
    }
}

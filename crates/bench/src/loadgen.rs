//! Multi-client load-generation knobs and query synthesis for
//! `serve_bench` — kept in the library so the FromStr/Display round-trip
//! contract is testable alongside the other flag enums.

use std::fmt;
use std::str::FromStr;

/// How each simulated client issues requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LoopMode {
    /// One request in flight per client: send, wait for the response,
    /// repeat. Measures service latency under self-limiting load.
    #[default]
    Closed,
    /// Requests sent on a fixed schedule (`--qps` per client) regardless
    /// of outstanding responses, pipelined on the connection. Measures
    /// behavior under offered load, including `Busy` rejections.
    Open,
}

impl LoopMode {
    /// Every mode, in benchmark order.
    pub const ALL: [LoopMode; 2] = [LoopMode::Closed, LoopMode::Open];

    /// Stable lowercase name (the `--mode` flag spelling).
    pub fn name(self) -> &'static str {
        match self {
            LoopMode::Closed => "closed",
            LoopMode::Open => "open",
        }
    }
}

impl fmt::Display for LoopMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for LoopMode {
    type Err = String;

    fn from_str(s: &str) -> Result<LoopMode, String> {
        match s {
            "closed" => Ok(LoopMode::Closed),
            "open" => Ok(LoopMode::Open),
            other => Err(format!("unknown loop mode `{other}` (closed|open)")),
        }
    }
}

/// What the generated clients ask for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RequestMix {
    /// Every client sends the same read query — the best case for
    /// read-batch fusion (fused executions ≪ submitted queries).
    #[default]
    ReadSame,
    /// Reads over varying relations and selectivities; identical requests
    /// still collide occasionally, so some fusion remains.
    ReadMixed,
    /// [`RequestMix::ReadMixed`] with every eighth request an `append`,
    /// exercising write serialization under the relation lock table.
    ReadWrite,
    /// [`RequestMix::ReadMixed`] with every fourth request an `append`
    /// into a per-client target drawn from r10..r14 — writes to
    /// *disjoint* relations. The partitioned-write-path mix: disjoint
    /// writes overlap under the per-relation gate
    /// (`concurrent_write_batches` > 0) while the read pool (r02..r09)
    /// never intersects a write's relations, so cached read plans
    /// survive every write.
    WriteDisjoint,
    /// Reads drawn zipf-ishly (harmonic weights, seeded per
    /// `(client, seq)`) from a pool of `distinct` plans — the plan-cache
    /// efficacy mix: a few hot queries dominate, a long tail keeps the
    /// cache honest. Spelled `repeat-read:N` (`repeat-read` = 8).
    RepeatRead { distinct: usize },
    /// The incremental-view mix: every fourth request appends into `r01`
    /// (a base of both [`RequestMix::VIEWS`]), half the rest read a
    /// maintained view, and the remainder are plain mixed reads. Use via
    /// [`RequestMix::request`] — view reads are not expressible as query
    /// text.
    ViewRead,
}

/// One synthesized client request: ordinary query text, or a read of a
/// named standing view (a different wire request, not a query).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenRequest {
    /// Submit this query text.
    Query(String),
    /// Read the named maintained view.
    ViewRead(&'static str),
}

impl RequestMix {
    /// Every mix, in benchmark order.
    pub const ALL: [RequestMix; 6] = [
        RequestMix::ReadSame,
        RequestMix::ReadMixed,
        RequestMix::ReadWrite,
        RequestMix::WriteDisjoint,
        RequestMix::RepeatRead { distinct: 8 },
        RequestMix::ViewRead,
    ];

    /// The standing views the `view-read` mix expects installed, as
    /// `(name, defining query)`: one join-bearing, one set-op, both over
    /// the mix's write target `r01` so every write batch exercises both
    /// delta paths. `serve_bench` installs them before driving the mix.
    pub const VIEWS: [(&'static str, &'static str); 2] = [
        ("bench_join", "(join (scan r00) (scan r01) (= key key))"),
        ("bench_set", "(union (scan r02) (scan r01))"),
    ];

    /// Largest accepted `repeat-read:N` pool. Beyond this the harmonic
    /// tail weights vanish into floating-point dust (and the pool far
    /// exceeds any plan-cache capacity worth measuring), so bigger
    /// values are a flag typo, not a workload.
    pub const MAX_REPEAT_READ_POOL: usize = 1 << 16;

    /// Stable lowercase name (the `--mix` flag spelling, minus the
    /// `repeat-read` pool-size suffix).
    pub fn name(self) -> &'static str {
        match self {
            RequestMix::ReadSame => "read-same",
            RequestMix::ReadMixed => "read-mixed",
            RequestMix::ReadWrite => "read-write",
            RequestMix::WriteDisjoint => "write-disjoint",
            RequestMix::RepeatRead { .. } => "repeat-read",
            RequestMix::ViewRead => "view-read",
        }
    }

    /// The request client `client` issues as its `seq`-th action.
    /// Deterministic, like [`RequestMix::query_text`], which it extends
    /// with view reads for the `view-read` mix.
    pub fn request(self, client: usize, seq: u64) -> GenRequest {
        match self {
            RequestMix::ViewRead => match seq % 4 {
                // Writes feed both views through r01; the key draw comes
                // from the client's own stream.
                3 => {
                    let key = client_draw(client, seq) % 50;
                    GenRequest::Query(format!("(append (restrict (scan r00) (= key {key})) r01)"))
                }
                1 => GenRequest::ViewRead(RequestMix::VIEWS[client % 2].0),
                2 => GenRequest::ViewRead(RequestMix::VIEWS[(client + 1) % 2].0),
                _ => GenRequest::Query(read_mixed(client, seq)),
            },
            other => GenRequest::Query(other.query_text(client, seq)),
        }
    }

    /// The query text client `client` sends as its `seq`-th request.
    /// Deterministic, so runs are reproducible and fusion counts are a
    /// property of the mix, not of chance.
    pub fn query_text(self, client: usize, seq: u64) -> String {
        match self {
            RequestMix::ReadSame => "(restrict (scan r03) (< val 500))".to_string(),
            RequestMix::ReadMixed => read_mixed(client, seq),
            RequestMix::ReadWrite => {
                if seq % 8 == 7 {
                    // Append one existing tuple (keys are unique, so the
                    // restriction selects exactly one) into a sibling
                    // relation — a minimal, observable write.
                    let key = (client as u64 * 31 + seq) % 50;
                    format!("(append (restrict (scan r00) (= key {key})) r01)")
                } else {
                    read_mixed(client, seq)
                }
            }
            RequestMix::WriteDisjoint => {
                if seq % 4 == 3 {
                    // Each client appends into its own target (r10..r14
                    // for five-way disjointness); the source restriction
                    // selects exactly one tuple. Distinct keys keep the
                    // write plans distinct, defeating write fusion.
                    let key = (client as u64 * 31 + seq) % 50;
                    let target = 10 + client % 5;
                    format!("(append (restrict (scan r00) (= key {key})) r{target})")
                } else {
                    read_mixed(client, seq)
                }
            }
            RequestMix::RepeatRead { distinct } => repeat_read(distinct, client, seq),
            // View reads are not query text; the plain-query share of the
            // mix is what this accessor can express.
            RequestMix::ViewRead => read_mixed(client, seq),
        }
    }
}

/// The splitmix64 output function: one additive step plus the two-round
/// xor-multiply finalizer.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The `seq`-th draw of client `client`'s private splitmix64 stream.
///
/// The client id is avalanched into a stream base first, so each client
/// is an *independently seeded* generator. The earlier seeding added
/// `client * GOLDEN + seq` into one finalizer, which made every client's
/// draws a shifted window of a single global sequence — adjacent clients
/// marched through correlated positions instead of sampling
/// independently.
fn client_draw(client: usize, seq: u64) -> u64 {
    let base = splitmix64(client as u64);
    splitmix64(base.wrapping_add(seq.wrapping_mul(0x9e37_79b9_7f4a_7c15)))
}

/// A read drawn from a fixed pool of `distinct` plans with zipf-ish
/// (harmonic, s = 1) weights: plan 0 is picked ∝ 1, plan 1 ∝ 1/2, plan
/// k ∝ 1/(k+1). Selection is a pure function of (client, seq), so runs
/// are reproducible and cache hit-rates are a property of the mix.
fn repeat_read(distinct: usize, client: usize, seq: u64) -> String {
    let distinct = distinct.max(1);
    // The client's private stream → a uniform draw in [0, 1).
    let u = (client_draw(client, seq) >> 11) as f64 / (1u64 << 53) as f64;
    // Walk the cumulative harmonic weights to the drawn mass.
    let total: f64 = (1..=distinct).map(|k| 1.0 / k as f64).sum();
    let mut mass = u * total;
    let mut rank = distinct - 1;
    for k in 0..distinct {
        mass -= 1.0 / (k + 1) as f64;
        if mass < 0.0 {
            rank = k;
            break;
        }
    }
    // Each rank is a distinct plan: relation cycles r02..r09 (never the
    // write targets) and the threshold is unique per rank.
    let rel = rank % 8 + 2;
    let threshold = 100 + 7 * rank;
    format!("(restrict (scan r{rel:02}) (< val {threshold}))")
}

/// A read whose relation and selectivity vary with (client, seq) over a
/// small set, so concurrent clients sometimes collide on the same plan.
fn read_mixed(client: usize, seq: u64) -> String {
    let rel = (client as u64 + seq) % 8 + 2; // r02..r09: never the write targets
    let threshold = (seq % 4 + 1) * 200; // 200..800 of VAL_DOMAIN=1000
    format!("(restrict (scan r{rel:02}) (< val {threshold}))")
}

impl fmt::Display for RequestMix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RequestMix::RepeatRead { distinct } => write!(f, "repeat-read:{distinct}"),
            other => f.write_str(other.name()),
        }
    }
}

impl FromStr for RequestMix {
    type Err = String;

    fn from_str(s: &str) -> Result<RequestMix, String> {
        match s {
            "read-same" => Ok(RequestMix::ReadSame),
            "read-mixed" => Ok(RequestMix::ReadMixed),
            "read-write" => Ok(RequestMix::ReadWrite),
            "write-disjoint" => Ok(RequestMix::WriteDisjoint),
            "repeat-read" => Ok(RequestMix::RepeatRead { distinct: 8 }),
            "view-read" => Ok(RequestMix::ViewRead),
            other => {
                if let Some(n) = other.strip_prefix("repeat-read:") {
                    let distinct = n
                        .parse::<usize>()
                        .ok()
                        .filter(|&d| (1..=RequestMix::MAX_REPEAT_READ_POOL).contains(&d))
                        .ok_or_else(|| {
                            format!(
                                "bad repeat-read pool size `{n}` (want an integer in 1..={})",
                                RequestMix::MAX_REPEAT_READ_POOL
                            )
                        })?;
                    return Ok(RequestMix::RepeatRead { distinct });
                }
                Err(format!(
                    "unknown request mix `{other}` \
                     (read-same|read-mixed|read-write|write-disjoint|repeat-read[:N]|view-read)"
                ))
            }
        }
    }
}

/// The `p`-th percentile (0.0–1.0) of an unsorted latency sample, by the
/// nearest-rank method. Returns 0.0 for an empty sample.
pub fn percentile(samples: &mut [f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let rank = ((p * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
    samples[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loop_mode_round_trips() {
        for mode in LoopMode::ALL {
            assert_eq!(mode.to_string().parse::<LoopMode>(), Ok(mode));
        }
        assert!("both".parse::<LoopMode>().is_err());
    }

    #[test]
    fn request_mix_round_trips() {
        for mix in RequestMix::ALL {
            assert_eq!(mix.to_string().parse::<RequestMix>(), Ok(mix));
        }
        assert!("write-only".parse::<RequestMix>().is_err());
    }

    #[test]
    fn read_same_is_identical_across_clients() {
        let q = RequestMix::ReadSame.query_text(0, 0);
        assert_eq!(RequestMix::ReadSame.query_text(7, 123), q);
    }

    #[test]
    fn read_write_mix_appends_every_eighth() {
        let writes = (0..64)
            .filter(|&s| {
                RequestMix::ReadWrite
                    .query_text(1, s)
                    .starts_with("(append")
            })
            .count();
        assert_eq!(writes, 8);
    }

    #[test]
    fn read_mixed_avoids_write_targets() {
        for client in 0..8 {
            for seq in 0..32 {
                let q = RequestMix::ReadMixed.query_text(client, seq);
                assert!(!q.contains("r00") && !q.contains("r01"), "{q}");
            }
        }
    }

    #[test]
    fn repeat_read_round_trips_with_pool_size() {
        assert_eq!(
            "repeat-read".parse::<RequestMix>(),
            Ok(RequestMix::RepeatRead { distinct: 8 })
        );
        assert_eq!(
            "repeat-read:32".parse::<RequestMix>(),
            Ok(RequestMix::RepeatRead { distinct: 32 })
        );
        let mix = RequestMix::RepeatRead { distinct: 17 };
        assert_eq!(mix.to_string(), "repeat-read:17");
        assert_eq!(mix.to_string().parse::<RequestMix>(), Ok(mix));
        assert!("repeat-read:0".parse::<RequestMix>().is_err());
        assert!("repeat-read:many".parse::<RequestMix>().is_err());
    }

    #[test]
    fn repeat_read_is_deterministic_and_skewed() {
        let mix = RequestMix::RepeatRead { distinct: 8 };
        // Pure function of (client, seq): same inputs, same query.
        assert_eq!(mix.query_text(3, 41), mix.query_text(3, 41));
        // Zipf-ish skew: the pool's hottest plan (rank 0) dominates any
        // uniform share, and the pool really has at most 8 plans.
        let mut counts = std::collections::HashMap::new();
        for client in 0..8 {
            for seq in 0..128 {
                *counts.entry(mix.query_text(client, seq)).or_insert(0u32) += 1;
            }
        }
        assert!(counts.len() <= 8);
        let hottest = *counts.values().max().expect("non-empty");
        let total: u32 = counts.values().sum();
        assert!(
            f64::from(hottest) > f64::from(total) / 8.0 * 2.0,
            "rank 0 should far exceed a uniform share: {hottest}/{total}"
        );
        // The pool avoids the write-target relations.
        for q in counts.keys() {
            assert!(!q.contains("r00") && !q.contains("r01"), "{q}");
        }
    }

    #[test]
    fn write_disjoint_targets_are_per_client_and_every_fourth() {
        let mix = RequestMix::WriteDisjoint;
        for client in 0..10 {
            let target = format!("r{}", 10 + client % 5);
            for seq in 0..32 {
                let q = mix.query_text(client, seq);
                if seq % 4 == 3 {
                    assert!(q.starts_with("(append"), "{q}");
                    assert!(q.ends_with(&format!("{target})")), "{q}");
                } else {
                    // Reads never touch the write targets (r00, r10..r14),
                    // so cached read plans survive every write.
                    assert!(q.starts_with("(restrict"), "{q}");
                    assert!(!q.contains("r00") && !q.contains("r1"), "{q}");
                }
            }
        }
        // Clients 5 apart share a target; neighbors never do.
        assert_eq!(
            mix.query_text(0, 3).split_whitespace().last(),
            mix.query_text(5, 3).split_whitespace().last()
        );
    }

    #[test]
    fn degenerate_repeat_read_pools_are_rejected() {
        // Zero would leave the harmonic weights empty (a panic in the
        // zipf walk before this guard existed); absurd sizes are typos.
        assert!("repeat-read:0".parse::<RequestMix>().is_err());
        assert!("repeat-read:-1".parse::<RequestMix>().is_err());
        assert!("repeat-read:65537".parse::<RequestMix>().is_err());
        assert!("repeat-read:18446744073709551616"
            .parse::<RequestMix>()
            .is_err());
        assert_eq!(
            "repeat-read:65536".parse::<RequestMix>(),
            Ok(RequestMix::RepeatRead {
                distinct: RequestMix::MAX_REPEAT_READ_POOL
            })
        );
        // Every accepted pool size synthesizes queries without panicking.
        for d in [1usize, 2, 65536] {
            let q = RequestMix::RepeatRead { distinct: d }.query_text(3, 7);
            assert!(q.starts_with("(restrict"), "{q}");
        }
    }

    #[test]
    fn client_streams_are_deterministic_and_independently_seeded() {
        let mix = RequestMix::RepeatRead { distinct: 64 };
        let stream =
            |client: usize| -> Vec<String> { (0..64).map(|s| mix.query_text(client, s)).collect() };
        for client in 0..4 {
            assert_eq!(stream(client), stream(client), "re-generation drifted");
        }
        // Independent seeding: distinct clients draw distinct sequences
        // (a 64-plan pool makes a 64-draw coincidence astronomically
        // unlikely), and no client's stream is a one-step shifted window
        // of its neighbor's — the signature of derived-from-one-stream
        // seeding.
        for client in 0..3 {
            assert_ne!(stream(client), stream(client + 1));
            let shifted =
                (0..64).filter(|&s| mix.query_text(client + 1, s) == mix.query_text(client, s + 1));
            assert!(
                shifted.count() < 16,
                "client {} tracks client {}'s stream",
                client + 1,
                client
            );
        }
    }

    #[test]
    fn view_read_mix_blends_writes_view_reads_and_queries() {
        assert_eq!("view-read".parse::<RequestMix>(), Ok(RequestMix::ViewRead));
        assert_eq!(RequestMix::ViewRead.to_string(), "view-read");
        let mut writes = 0;
        let mut view_reads = std::collections::HashSet::new();
        for client in 0..4 {
            for seq in 0..32 {
                match RequestMix::ViewRead.request(client, seq) {
                    GenRequest::Query(q) if q.starts_with("(append") => {
                        assert_eq!(seq % 4, 3, "writes land on the fourth beat");
                        assert!(q.ends_with("r01)"), "writes feed the view bases: {q}");
                        writes += 1;
                    }
                    GenRequest::Query(q) => assert!(q.starts_with("(restrict"), "{q}"),
                    GenRequest::ViewRead(name) => {
                        view_reads.insert(name);
                    }
                }
            }
        }
        assert_eq!(writes, 4 * 8, "every fourth request writes");
        let names: std::collections::HashSet<_> =
            RequestMix::VIEWS.iter().map(|(n, _)| *n).collect();
        assert_eq!(view_reads, names, "both views get read");
        // Deterministic, like every other mix.
        assert_eq!(
            RequestMix::ViewRead.request(2, 17),
            RequestMix::ViewRead.request(2, 17)
        );
        // The non-view mixes pass through request() as plain queries.
        assert_eq!(
            RequestMix::ReadSame.request(0, 0),
            GenRequest::Query(RequestMix::ReadSame.query_text(0, 0))
        );
    }

    #[test]
    fn percentile_nearest_rank() {
        let mut v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&mut v, 0.50), 50.0);
        assert_eq!(percentile(&mut v, 0.95), 95.0);
        assert_eq!(percentile(&mut v, 0.99), 99.0);
        assert_eq!(percentile(&mut [], 0.5), 0.0);
    }
}

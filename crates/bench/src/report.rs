//! Build and write `BENCH_<name>.json` artifacts from run metrics.
//!
//! One builder per executor (`host`, `core`, `ring`) plus a generic sweep
//! artifact. The schema lives in `df-obs` (`BenchArtifact`, documented in
//! DESIGN.md §7); this module only maps each executor's metrics onto it.

use std::io;
use std::path::{Path, PathBuf};

use df_core::Metrics;
use df_host::{HostParams, HostRunOutput};
use df_obs::{BenchArtifact, IntervalSeries, QueryRow, SeriesRow, SweepRow};
use df_ring::{RingMetrics, RingParams};

/// Map one `IntervalSeries` onto a named artifact series row. Empty series
/// (path never carried a byte) are omitted from artifacts.
pub fn series_row(path: &str, s: &IntervalSeries) -> Option<SeriesRow> {
    if s.is_empty() {
        return None;
    }
    Some(SeriesRow {
        path: path.to_string(),
        interval_secs: s.interval_secs(),
        mbps: s.mbps_series(),
    })
}

/// Build the `host`-kind artifact for one `host_run` batch.
pub fn host_artifact(
    name: &str,
    scale: f64,
    params: &HostParams,
    out: &HostRunOutput,
) -> BenchArtifact {
    let m = &out.metrics;
    let mut a = BenchArtifact::new(name, "host");
    a.param("scale", scale)
        .param("workers", params.workers)
        .param("page_size", params.page_size)
        .param("alloc", params.strategy)
        .param("join", params.join)
        .param("transfer", params.transfer);
    a.elapsed_secs = m.elapsed.as_secs_f64();
    a.faults_active = params.fault.is_active();
    a.counter("queries", m.per_query.len() as f64)
        .counter(
            "result_tuples",
            m.per_query.iter().map(|q| q.result_tuples as f64).sum(),
        )
        .counter(
            "result_payload_bytes",
            m.per_query
                .iter()
                .map(|q| q.result_payload_bytes as f64)
                .sum(),
        )
        .counter("units", m.total_units() as f64)
        .counter("kernel_spans", m.total_kernel_spans() as f64)
        .counter("bytes_moved", m.total_bytes() as f64)
        .counter("worker_utilization", m.worker_utilization())
        .counter(
            "send_wait_secs",
            m.per_worker.iter().map(|w| w.send_wait.as_secs_f64()).sum(),
        )
        .counter("kernel_panics", m.total_panics() as f64)
        .counter("workers_lost", m.workers_lost() as f64);
    for (i, q) in m.per_query.iter().enumerate() {
        a.per_query.push(QueryRow {
            index: i as u64,
            tuples: q.result_tuples as u64,
            result_payload_bytes: q.result_payload_bytes,
            units: q.units_fired as u64,
            probe_units: q.probe_units as u64,
            sweep_units: q.sweep_units as u64,
            pages_moved: q.pages_moved as u64,
            bytes_moved: q.bytes_moved,
            elapsed_secs: q.elapsed.as_secs_f64(),
            failed: out.results.get(i).is_some_and(|r| r.is_err()),
        });
    }
    a
}

/// Build the `core`-kind artifact for one df-core simulation, including
/// its arbitration/distribution bandwidth-demand curves.
pub fn core_artifact(name: &str, m: &Metrics) -> BenchArtifact {
    let mut a = BenchArtifact::new(name, "core");
    a.param("processors", m.processors);
    a.elapsed_secs = m.elapsed.as_secs_f64();
    a.counter("queries", m.query_completions.len() as f64)
        .counter("units", m.units_dispatched as f64)
        .counter("arbitration_bytes", m.arbitration.bytes as f64)
        .counter("distribution_bytes", m.distribution.bytes as f64)
        .counter("disk_read_bytes", m.disk_read.bytes as f64)
        .counter("disk_write_bytes", m.disk_write.bytes as f64)
        .counter("arbitration_mbps", m.arbitration_mbps())
        .counter("distribution_mbps", m.distribution_mbps())
        .counter("processor_utilization", m.processor_utilization());
    a.series = m
        .bandwidth_series()
        .iter()
        .filter_map(|(path, s)| series_row(path, s))
        .collect();
    a
}

/// Build the `ring`-kind artifact for one ring-machine run, including the
/// Figure-4.2 bandwidth-demand curves.
pub fn ring_artifact(name: &str, params: &RingParams, m: &RingMetrics) -> BenchArtifact {
    let mut a = BenchArtifact::new(name, "ring");
    a.param("ics", params.ics)
        .param("ips", params.ips)
        .param("page_size", params.page_size);
    a.elapsed_secs = m.elapsed.as_secs_f64();
    a.counter("queries", m.query_completions.len() as f64)
        .counter("outer_ring_bytes", m.outer_ring.bytes as f64)
        .counter("inner_ring_bytes", m.inner_ring.bytes as f64)
        .counter("outer_ring_mbps", m.outer_ring_mbps())
        .counter("inner_ring_mbps", m.inner_ring_mbps())
        .counter("cache_mbps", m.cache_mbps())
        .counter("disk_mbps", m.disk_mbps())
        .counter("ip_utilization", m.ip_utilization())
        .counter("broadcasts", m.broadcasts as f64);
    a.series = m
        .bandwidth_series()
        .iter()
        .filter_map(|(path, s)| series_row(path, s))
        .collect();
    a
}

/// Build a `sweep`-kind artifact from labelled measurement rows (one row
/// per swept configuration, e.g. one IP count of Figure 4.2).
pub fn sweep_artifact(name: &str, rows: Vec<SweepRow>) -> BenchArtifact {
    let mut a = BenchArtifact::new(name, "sweep");
    a.counter("rows", rows.len() as f64);
    a.sweep = rows;
    a
}

/// Write an artifact to `dir/BENCH_<name>.json`, creating `dir` if needed.
/// Returns the path written.
///
/// # Errors
/// Propagates filesystem errors.
pub fn write_artifact(dir: &Path, a: &BenchArtifact) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("BENCH_{}.json", a.name));
    std::fs::write(&path, a.to_json())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_host, setup_with_page_size};

    #[test]
    fn host_artifact_is_sound_and_round_trips() {
        let s = setup_with_page_size(0.02, 1016);
        let params = HostParams {
            workers: 2,
            deterministic: true,
            ..HostParams::default()
        };
        let out = run_host(&s, &params);
        let a = host_artifact("unit_smoke", 0.02, &params, &out);
        assert_eq!(a.check(), Vec::<String>::new());
        assert_eq!(a.per_query.len(), s.queries.len());
        assert!(a.counter_value("result_tuples").unwrap() > 0.0);
        let back = BenchArtifact::from_json(&a.to_json()).expect("round trip");
        assert_eq!(back.per_query, a.per_query);
        // And it passes self-comparison under the default thresholds.
        assert_eq!(
            BenchArtifact::compare(&a, &back, &df_obs::CompareOptions::default()),
            Vec::<String>::new()
        );
    }

    #[test]
    fn core_artifact_carries_bandwidth_series() {
        let s = setup_with_page_size(0.02, 1016);
        let params = crate::fig31_params(&s, 4);
        let m = crate::run_core(&s, &params, df_core::Granularity::Page);
        let a = core_artifact("core_smoke", &m);
        assert_eq!(a.check(), Vec::<String>::new());
        assert!(
            a.series.iter().any(|r| r.path == "arbitration"),
            "series: {:?}",
            a.series.iter().map(|r| &r.path).collect::<Vec<_>>()
        );
        // Series totals must agree with the ByteCounter the same transfers
        // fed: reconstruct bytes from the Mbps buckets.
        let row = a.series.iter().find(|r| r.path == "arbitration").unwrap();
        let total: f64 = row
            .mbps
            .iter()
            .map(|mbps| mbps * row.interval_secs * 1e6 / 8.0)
            .sum();
        let expect = m.arbitration.bytes as f64;
        assert!(
            (total - expect).abs() < expect * 1e-9 + 1.0,
            "series total {total} vs counter {expect}"
        );
    }

    #[test]
    fn write_artifact_places_file_by_name() {
        let dir = std::env::temp_dir().join("df_bench_report_test");
        let a = BenchArtifact::new("placement", "sweep");
        let path = write_artifact(&dir, &a).expect("writes");
        assert!(path.ends_with("BENCH_placement.json"));
        let text = std::fs::read_to_string(&path).expect("readable");
        assert!(BenchArtifact::from_json(&text).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }
}

//! ABL-ALLOC — processor-assignment strategies.
//!
//! The companion paper [4] compares four strategies and finds the
//! data-flow (balanced) one best; this paper's §1 cites that result as its
//! motivation and §4.1 requires the MC to keep "processors … distributed
//! across all nodes in the query tree". This ablation compares the four
//! analogous policies implemented in `df-core::AllocationStrategy`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use df_bench::{fig31_params, setup};
use df_core::{run_queries, AllocationStrategy, Granularity};

fn abl_alloc(c: &mut Criterion) {
    let s = setup(0.05);
    let params = fig31_params(&s, 16);
    let run = |strategy: AllocationStrategy| {
        run_queries(&s.db, &s.queries, &params, Granularity::Page, strategy)
            .expect("runs")
            .metrics
    };
    eprintln!("\nABL-ALLOC (scale 0.05): allocation strategies at 16 processors, page level");
    for strategy in AllocationStrategy::ALL {
        let m = run(strategy);
        eprintln!(
            "  {:<22} elapsed={:8.3}s  mean-response={:8.3}s  util={:4.1}%",
            strategy.to_string(),
            m.elapsed.as_secs_f64(),
            m.mean_response().as_secs_f64(),
            m.processor_utilization() * 100.0
        );
    }

    let mut group = c.benchmark_group("abl_alloc");
    group.sample_size(10);
    for strategy in AllocationStrategy::ALL {
        group.bench_with_input(
            BenchmarkId::new("benchmark", strategy.to_string()),
            &strategy,
            |b, &st| b.iter(|| run(st)),
        );
    }
    group.finish();
}

criterion_group!(benches, abl_alloc);
criterion_main!(benches);

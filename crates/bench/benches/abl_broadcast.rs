//! ABL-BCAST — the broadcast facility (requirement 4, §4.0).
//!
//! "When more than one processor is used to execute the nested-loops join
//! algorithm … a broadcast facility is needed so that a page from the inner
//! relation can be distributed to some or all of the participating
//! processors simultaneously" — otherwise each page pair re-ships its inner
//! page. This ablation toggles `broadcast_join` on the df-core machine and
//! reports the network-traffic and time difference on join-heavy work.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use df_bench::{fig31_params, setup};
use df_core::{run_queries, AllocationStrategy, Granularity};

fn abl_broadcast(c: &mut Criterion) {
    let s = setup(0.05);
    let run = |broadcast: bool| {
        let mut params = fig31_params(&s, 16);
        params.broadcast_join = broadcast;
        run_queries(
            &s.db,
            &s.queries,
            &params,
            Granularity::Page,
            AllocationStrategy::default(),
        )
        .expect("runs")
        .metrics
    };
    eprintln!("\nABL-BCAST (scale 0.05): nested-loops join with and without broadcast");
    for broadcast in [true, false] {
        let m = run(broadcast);
        eprintln!(
            "  broadcast={:<5} elapsed={:8.3}s  arb={:8} KB ({} packets)  cache-out={:8} KB",
            broadcast,
            m.elapsed.as_secs_f64(),
            m.arbitration.bytes / 1024,
            m.arbitration.transfers,
            m.cache_out.bytes / 1024
        );
    }

    let mut group = c.benchmark_group("abl_broadcast");
    group.sample_size(10);
    for broadcast in [true, false] {
        group.bench_with_input(
            BenchmarkId::new("benchmark", broadcast),
            &broadcast,
            |b, &bc| b.iter(|| run(bc)),
        );
    }
    group.finish();
}

criterion_group!(benches, abl_broadcast);
criterion_main!(benches);

//! PERF-HOST — real-threads scaling of the host executor.
//!
//! The simulators predict near-linear speedup from page-granularity firing
//! (Figure 3.1); this ablation checks the prediction on actual hardware:
//! the ten-query benchmark (and its join-heavy subset, where PairSweep
//! firing exposes the most independent work units) swept over worker
//! counts. Results are recorded in `EXPERIMENTS.md` (PERF-HOST).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use df_bench::setup_with_page_size;
use df_host::{run_host_queries, HostParams};
use df_query::QueryTree;

const SCALE: f64 = 0.2;
const PAGE_SIZE: usize = 4096;

fn worker_sweep() -> Vec<usize> {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    // Always sweep 1/2/4 so the table is comparable across machines: on
    // multi-core hosts it shows scaling, on smaller ones it bounds the
    // threading overhead (speedup ≈ 1.0 means the channels cost nothing).
    let mut sweep = vec![1, 2, 4, 8, 16];
    sweep.retain(|&w| w <= cores.max(4));
    if cores > 4 && !sweep.contains(&cores) {
        sweep.push(cores);
    }
    sweep
}

fn run(db: &df_relalg::Catalog, queries: &[QueryTree], workers: usize) -> std::time::Duration {
    let params = HostParams {
        page_size: PAGE_SIZE,
        ..HostParams::with_workers(workers)
    };
    run_host_queries(db, queries, &params)
        .expect("host run")
        .metrics
        .elapsed
}

fn abl_host_scaling(c: &mut Criterion) {
    let s = setup_with_page_size(SCALE, PAGE_SIZE);
    let join_heavy: Vec<QueryTree> = s
        .queries
        .iter()
        .filter(|q| q.count_op("join") >= 2)
        .cloned()
        .collect();

    eprintln!(
        "\nPERF-HOST (scale {SCALE}, {PAGE_SIZE} B pages): \
         ten-query benchmark on real threads"
    );
    eprintln!(
        "{:>8} {:>12} {:>9} {:>14} {:>11}",
        "workers", "all ten", "speedup", "join-heavy", "speedup"
    );
    let base_all = run(&s.db, &s.queries, 1);
    let base_join = run(&s.db, &join_heavy, 1);
    for &w in &worker_sweep() {
        let all = run(&s.db, &s.queries, w);
        let join = run(&s.db, &join_heavy, w);
        eprintln!(
            "{:>8} {:>12.2?} {:>8.2}x {:>14.2?} {:>10.2}x",
            w,
            all,
            base_all.as_secs_f64() / all.as_secs_f64(),
            join,
            base_join.as_secs_f64() / join.as_secs_f64()
        );
    }

    let mut group = c.benchmark_group("abl_host_scaling");
    group.sample_size(10);
    for &w in &worker_sweep() {
        group.bench_with_input(BenchmarkId::new("ten_queries", w), &w, |b, &w| {
            b.iter(|| run(&s.db, &s.queries, w))
        });
        group.bench_with_input(BenchmarkId::new("join_heavy", w), &w, |b, &w| {
            b.iter(|| run(&s.db, &join_heavy, w))
        });
    }
    group.finish();
}

criterion_group!(benches, abl_host_scaling);
criterion_main!(benches);

//! SEC-3.3 — the arbitration-network bandwidth analysis.
//!
//! Paper §3.3: a nested-loops join of n × m 100-byte tuples moves
//! `n·m·(200+c)` bytes at tuple granularity but only `n·m·(20+c/100)` at
//! page granularity (1000-byte pages) — a 10× difference. This bench
//! (a) evaluates the closed-form model across `c`, and (b) *measures* the
//! same quantities from the simulated machine with the broadcast facility
//! disabled (the analysis pre-dates §4's broadcast design) and checks the
//! measured ratio lands on the predicted one.

use criterion::{criterion_group, criterion_main, Criterion};
use df_core::{bandwidth, run_queries, AllocationStrategy, Granularity, MachineParams};
use df_workload::{chain_query, generate_database, DatabaseSpec, VAL_DOMAIN};

fn sec_3_3(c: &mut Criterion) {
    // (a) Closed form, exactly the paper's arithmetic.
    eprintln!("\nSEC-3.3 closed form: join of 1000 x 1000 100-byte tuples, 10 tuples/page");
    eprintln!(
        "  {:>4} {:>16} {:>16} {:>7}",
        "c", "tuple bytes", "page bytes", "ratio"
    );
    for c_overhead in [0usize, 32, 50, 100, 200] {
        let t = bandwidth::tuple_level_join_bytes(1000, 1000, 100, c_overhead);
        let p = bandwidth::page_level_join_bytes(1000, 1000, 100, 10, c_overhead);
        eprintln!(
            "  {:>4} {:>16} {:>16} {:>7.2}",
            c_overhead,
            t,
            p,
            t as f64 / p as f64
        );
    }

    // (b) Measured from the simulator (single unrestricted join, broadcast
    // off so page-level ships page pairs exactly as §3.3 assumes).
    let db = generate_database(&DatabaseSpec::scaled(0.02));
    let q = chain_query(&db, 15, 9, 1, 0, VAL_DOMAIN).expect("join query");
    let mut params = MachineParams::with_processors(8);
    params.broadcast_join = false;
    params.max_inner_batch = 1; // exactly one (outer, inner) pair per packet
    params.cache.frames = 1024;
    let run = |g: Granularity| {
        run_queries(
            &db,
            std::slice::from_ref(&q),
            &params,
            g,
            AllocationStrategy::default(),
        )
        .expect("join runs")
        .metrics
    };
    let tuple = run(Granularity::Tuple);
    let page = run(Granularity::Page);
    let n = db.get("r09").unwrap().num_tuples();
    let m = db.get("r10").unwrap().num_tuples();
    eprintln!(
        "\n  measured (n={n}, m={m}, c={}): tuple={} B / page={} B -> ratio {:.2} (predicted {:.2})",
        params.packet_overhead,
        tuple.arbitration.bytes,
        page.arbitration.bytes,
        tuple.arbitration.bytes as f64 / page.arbitration.bytes as f64,
        bandwidth::tuple_over_page_ratio(n, m, 100, 10, params.packet_overhead),
    );

    let mut group = c.benchmark_group("sec3_3");
    group.sample_size(10);
    group.bench_function("tuple_level_join", |b| b.iter(|| run(Granularity::Tuple)));
    group.bench_function("page_level_join", |b| b.iter(|| run(Granularity::Page)));
    group.finish();
}

criterion_group!(benches, sec_3_3);
criterion_main!(benches);

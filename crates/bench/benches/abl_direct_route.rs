//! ABL-ROUTE — the §5 future-work extension: direct IP→IP page routing.
//!
//! "…it should be possible to route some of the data pages which are
//! produced by IPs directly from one IP to another without first sending
//! the page to an IC. If such an approach could be successfully implemented
//! then message traffic on the outer ring could be further reduced." This
//! ablation toggles `direct_routing` on the ring machine and measures the
//! outer-ring traffic the paper expected to save.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use df_bench::setup;
use df_ring::{run_ring_queries, RingParams};

fn abl_direct_route(c: &mut Criterion) {
    let s = setup(0.05);
    let run = |direct: bool| {
        let mut params = RingParams::with_pools(8, 16);
        params.direct_routing = direct;
        params.cache.frames = 1024;
        params.concurrency_control = false;
        run_ring_queries(&s.db, &s.queries, &params)
            .expect("runs")
            .metrics
    };
    eprintln!("\nABL-ROUTE (scale 0.05): store-and-forward vs direct IP->IP routing");
    for direct in [false, true] {
        let m = run(direct);
        eprintln!(
            "  direct={:<5} elapsed={:8.3}s  outer ring={:8} KB ({:5.2} Mbps)  direct pages={}",
            direct,
            m.elapsed.as_secs_f64(),
            m.outer_ring.bytes / 1024,
            m.outer_ring_mbps(),
            m.direct_routed_pages
        );
    }

    let mut group = c.benchmark_group("abl_direct_route");
    group.sample_size(10);
    for direct in [false, true] {
        group.bench_with_input(BenchmarkId::new("benchmark", direct), &direct, |b, &d| {
            b.iter(|| run(d))
        });
    }
    group.finish();
}

criterion_group!(benches, abl_direct_route);
criterion_main!(benches);

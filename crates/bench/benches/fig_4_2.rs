//! FIG-4.2 — bandwidth requirements of the ring machine vs number of IPs.
//!
//! Paper Figure 4.2 reports the average bandwidth demand (total bytes
//! divided by benchmark execution time) of DIRECT with page-level
//! granularity as the IP count grows, under the §4.1 assumptions (16 KB
//! operand pages, LSI-11 processors, CCD cache, two IBM 3330 drives). The
//! conclusion: a 40 Mbps ring suffices for up to ~50 IPs; ~100 Mbps for
//! larger configurations. Full scale: `experiments fig4_2`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use df_bench::{fig42_params, run_ring, setup_with_page_size};

fn fig_4_2(c: &mut Criterion) {
    let s = setup_with_page_size(0.05, 16 * 1024);
    eprintln!("\nFIG-4.2 (scale 0.05): average bandwidth vs number of IPs");
    eprintln!(
        "  {:>4} {:>10} {:>12} {:>12} {:>12} {:>12}",
        "IPs", "elapsed", "outer ring", "inner ring", "cache", "disk"
    );
    for ips in [5usize, 10, 20, 40] {
        let params = fig42_params(&s, ips);
        let m = run_ring(&s, &params);
        eprintln!(
            "  {:>4} {:>9.3}s {:>8.2} Mbps {:>8.3} Mbps {:>8.2} Mbps {:>8.2} Mbps",
            ips,
            m.elapsed.as_secs_f64(),
            m.outer_ring_mbps(),
            m.inner_ring_mbps(),
            m.cache_mbps(),
            m.disk_mbps()
        );
    }

    let mut group = c.benchmark_group("fig4_2");
    group.sample_size(10);
    for ips in [10usize, 40] {
        let params = fig42_params(&s, ips);
        group.bench_with_input(BenchmarkId::new("ring_benchmark", ips), &ips, |b, _| {
            b.iter(|| run_ring(&s, &params))
        });
    }
    group.finish();
}

criterion_group!(benches, fig_4_2);
criterion_main!(benches);

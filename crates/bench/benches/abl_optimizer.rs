//! ABL-OPT — what the host-side optimizer buys the machine.
//!
//! The paper assumes query trees arrive ready-made from a host computer;
//! DIRECT's front end did the algebraic clean-up. This ablation runs naive
//! chain queries (restricts stacked above the joins) against their
//! `df-opt`-optimized forms on the data-flow machine and reports the
//! simulated-time and network-traffic difference.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use df_core::{run_query, Granularity, MachineParams};
use df_opt::{optimize, CatalogStats};
use df_query::QueryTree;
use df_workload::{chain_query_naive, generate_database, DatabaseSpec};

fn abl_optimizer(c: &mut Criterion) {
    let db = generate_database(&DatabaseSpec::scaled(0.05));
    let stats = CatalogStats::gather(&db);
    let params = MachineParams::with_processors(16);
    let shapes: [(usize, usize, usize); 3] = [(1, 1, 2), (2, 2, 3), (4, 3, 4)];

    eprintln!("\nABL-OPT (scale 0.05): naive vs optimized plans, 16 processors");
    let mut plans: Vec<(String, QueryTree, QueryTree)> = Vec::new();
    for &(start, joins, restricts) in &shapes {
        let naive = chain_query_naive(&db, 15, start, joins, restricts, 500).expect("naive");
        let optimized = optimize(&db, &naive, &stats).expect("optimizes").tree;
        let (r1, m1) = run_query(&db, &naive, &params, Granularity::Page).expect("naive runs");
        let (r2, m2) =
            run_query(&db, &optimized, &params, Granularity::Page).expect("optimized runs");
        assert!(r1.same_contents(&r2), "optimizer changed results");
        eprintln!(
            "  {joins} joins/{restricts} restricts: naive={:8.3}s optimized={:8.3}s \
             speedup={:4.2}x  arb {:6} -> {:6} KB",
            m1.elapsed.as_secs_f64(),
            m2.elapsed.as_secs_f64(),
            m1.elapsed.as_secs_f64() / m2.elapsed.as_secs_f64(),
            m1.arbitration.bytes / 1024,
            m2.arbitration.bytes / 1024,
        );
        plans.push((format!("{joins}j{restricts}r"), naive, optimized));
    }

    let mut group = c.benchmark_group("abl_optimizer");
    group.sample_size(10);
    for (label, naive, optimized) in &plans {
        group.bench_with_input(BenchmarkId::new("naive", label), naive, |b, q| {
            b.iter(|| run_query(&db, q, &params, Granularity::Page).expect("runs"))
        });
        group.bench_with_input(BenchmarkId::new("optimized", label), optimized, |b, q| {
            b.iter(|| run_query(&db, q, &params, Granularity::Page).expect("runs"))
        });
    }
    group.finish();
}

criterion_group!(benches, abl_optimizer);
criterion_main!(benches);

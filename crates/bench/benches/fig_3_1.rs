//! FIG-3.1 — "Comparison of Page-Level and Relation-Level Granularities".
//!
//! The paper's Figure 3.1 plots the ten-query benchmark's execution time
//! under relation-level and page-level granularity, with page-level winning
//! by "a factor of about two". This bench runs the same comparison at
//! reduced scale across a processor sweep; the measured *simulated* times
//! and their ratio are printed before Criterion measures the (host) cost of
//! each simulation. Full scale: `experiments fig3_1`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use df_bench::{fig31_params, run_core, setup};
use df_core::Granularity;

fn fig_3_1(c: &mut Criterion) {
    let s = setup(0.05);
    eprintln!("\nFIG-3.1 (scale 0.05): simulated benchmark execution time");
    for procs in [4usize, 8, 16, 32] {
        let params = fig31_params(&s, procs);
        let rel = run_core(&s, &params, Granularity::Relation);
        let page = run_core(&s, &params, Granularity::Page);
        eprintln!(
            "  procs={procs:3}  relation={:8.3}s  page={:8.3}s  ratio={:.2}",
            rel.elapsed.as_secs_f64(),
            page.elapsed.as_secs_f64(),
            rel.elapsed.as_secs_f64() / page.elapsed.as_secs_f64()
        );
    }

    let mut group = c.benchmark_group("fig3_1");
    group.sample_size(10);
    for procs in [8usize, 32] {
        let params = fig31_params(&s, procs);
        for g in [Granularity::Relation, Granularity::Page] {
            group.bench_with_input(BenchmarkId::new(format!("{g}"), procs), &procs, |b, _| {
                b.iter(|| run_core(&s, &params, g))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig_3_1);
criterion_main!(benches);

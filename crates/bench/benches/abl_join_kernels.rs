//! ABL-JOIN — nested loops vs sort-merge (Blasgen & Eswaran [5]).
//!
//! §2.1: sort-merge is the faster *uniprocessor* algorithm (O(n log n) vs
//! O(n·m)), but nested loops parallelizes perfectly, which is why the paper
//! builds its machines around it. This is a genuine CPU microbenchmark of
//! the two kernel implementations (no simulation): Criterion measures real
//! host time, demonstrating the uniprocessor crossover the paper cites.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use df_query::ops::{merge_join_relations, nested_loops_join_relations};
use df_relalg::{DataType, JoinCondition, Relation, Schema, Tuple, Value};
use df_sim::rng::SimRng;

fn make_relation(name: &str, n: usize, key_domain: i64, seed: u64) -> Relation {
    let schema = Schema::build()
        .attr("key", DataType::Int)
        .attr("pad", DataType::Str(92))
        .finish()
        .expect("schema");
    let mut rng = SimRng::new(seed);
    Relation::from_tuples(
        name,
        schema,
        1016,
        (0..n).map(|_| {
            Tuple::new(vec![
                Value::Int(rng.gen_range(0..key_domain)),
                Value::str("x"),
            ])
        }),
    )
    .expect("relation")
}

fn abl_join_kernels(c: &mut Criterion) {
    eprintln!("\nABL-JOIN: uniprocessor join kernels (real CPU time, not simulated)");
    let mut group = c.benchmark_group("abl_join_kernels");
    group.sample_size(10);
    for n in [200usize, 800, 2000] {
        let outer = make_relation("outer", n, n as i64, 1);
        let inner = make_relation("inner", n, n as i64, 2);
        let cond =
            JoinCondition::equi(outer.schema(), "key", inner.schema(), "key").expect("condition");
        group.bench_with_input(BenchmarkId::new("nested_loops", n), &n, |b, _| {
            b.iter(|| nested_loops_join_relations(&outer, &inner, &cond))
        });
        group.bench_with_input(BenchmarkId::new("sort_merge", n), &n, |b, _| {
            b.iter(|| merge_join_relations(&outer, &inner, &cond).expect("equi-join"))
        });
    }
    group.finish();
}

criterion_group!(benches, abl_join_kernels);
criterion_main!(benches);

//! ABL-JOIN — nested loops vs sort-merge (Blasgen & Eswaran [5]) vs the
//! hash-accelerated path (PR 3's deviation, DESIGN.md §5).
//!
//! §2.1: sort-merge is the faster *uniprocessor* algorithm (O(n log n) vs
//! O(n·m)), but nested loops parallelizes perfectly, which is why the paper
//! builds its machines around it. The hash path keeps nested loops' perfect
//! page-pair parallelism and its output order while shrinking each pair to
//! O(n + m). This is a genuine CPU microbenchmark of the kernel
//! implementations (no simulation): Criterion measures real host time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use df_query::ops::{
    hash_join_pages_raw, hash_join_relations, join_pages_raw, merge_join_relations,
    nested_loops_join_relations,
};
use df_relalg::{DataType, JoinCondition, Relation, Schema, Tuple, Value};
use df_sim::rng::SimRng;

fn make_relation(name: &str, n: usize, key_domain: i64, seed: u64, page_size: usize) -> Relation {
    let schema = Schema::build()
        .attr("key", DataType::Int)
        .attr("pad", DataType::Str(92))
        .finish()
        .expect("schema");
    let mut rng = SimRng::new(seed);
    Relation::from_tuples(
        name,
        schema,
        page_size,
        (0..n).map(|_| {
            Tuple::new(vec![
                Value::Int(rng.gen_range(0..key_domain)),
                Value::str("x"),
            ])
        }),
    )
    .expect("relation")
}

fn abl_join_kernels(c: &mut Criterion) {
    eprintln!("\nABL-JOIN: uniprocessor join kernels (real CPU time, not simulated)");
    let mut group = c.benchmark_group("abl_join_kernels");
    group.sample_size(10);
    for n in [200usize, 800, 2000] {
        let outer = make_relation("outer", n, n as i64, 1, 1016);
        let inner = make_relation("inner", n, n as i64, 2, 1016);
        let cond =
            JoinCondition::equi(outer.schema(), "key", inner.schema(), "key").expect("condition");
        group.throughput(Throughput::Bytes(
            (outer.total_bytes() + inner.total_bytes()) as u64,
        ));
        group.bench_with_input(BenchmarkId::new("nested_loops", n), &n, |b, _| {
            b.iter(|| nested_loops_join_relations(&outer, &inner, &cond))
        });
        group.bench_with_input(BenchmarkId::new("sort_merge", n), &n, |b, _| {
            b.iter(|| merge_join_relations(&outer, &inner, &cond).expect("equi-join"))
        });
        group.bench_with_input(BenchmarkId::new("hash", n), &n, |b, _| {
            b.iter(|| hash_join_relations(&outer, &inner, &cond))
        });
    }
    group.finish();

    // The page-pair kernels the machines actually fire (§3.2 work units),
    // at the PERF-HJ page size: one nested sweep vs one index-build+probe
    // per pair, summed over every pair of a low-selectivity equi-join.
    eprintln!("\nABL-JOIN: page-pair kernels at 4096 B pages (PERF-HJ setting)");
    let mut group = c.benchmark_group("abl_join_page_pairs");
    group.sample_size(10);
    let outer = make_relation("outer", 4000, 4000, 3, 4096);
    let inner = make_relation("inner", 4000, 4000, 4, 4096);
    let cond =
        JoinCondition::equi(outer.schema(), "key", inner.schema(), "key").expect("condition");
    let out_schema = outer.schema().concat(inner.schema());
    group.throughput(Throughput::Bytes(
        (outer.total_bytes() + inner.total_bytes()) as u64,
    ));
    group.bench_function("nested_sweep", |b| {
        b.iter(|| {
            let mut n = 0;
            for op in outer.pages() {
                for ip in inner.pages() {
                    n += join_pages_raw(op, ip, &cond, &out_schema).len();
                }
            }
            n
        })
    });
    group.bench_function("hash_probe", |b| {
        b.iter(|| {
            let mut n = 0;
            for op in outer.pages() {
                for ip in inner.pages() {
                    n += hash_join_pages_raw(op, ip, &cond, &out_schema).len();
                }
            }
            n
        })
    });
    group.finish();
}

criterion_group!(benches, abl_join_kernels);
criterion_main!(benches);

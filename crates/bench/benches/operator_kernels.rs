//! Microbenchmarks of the page-at-a-time operator kernels and the tuple
//! codec — the per-packet work an instruction processor performs. These are
//! real CPU benchmarks (no simulation) guarding the hot path from
//! regressions.
//!
//! Each kernel group reports `Throughput::Bytes` over the input page data
//! so decoded-`Tuple` and zero-copy (`TupleRef`/`TupleBuf`) variants are
//! directly comparable in MiB/s.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use df_query::ops::{
    dedup_pages_raw, dedup_tuples, join_pages, join_pages_raw, project_page, project_page_raw,
    restrict_page, restrict_page_raw, span_output_schema, span_page_raw, SpanStep,
};
use df_relalg::{
    CmpOp, DataType, JoinCondition, Page, Predicate, Projection, Schema, Tuple, Value,
};

fn schema() -> Schema {
    Schema::build()
        .attr("key", DataType::Int)
        .attr("fk", DataType::Int)
        .attr("val", DataType::Int)
        .attr("pad", DataType::Str(76))
        .finish()
        .expect("schema")
}

/// A full 10-tuple page of 100-byte tuples — §3.3's standard page.
fn page() -> Page {
    let s = schema();
    let mut p = Page::new(s, 1016).expect("page");
    for i in 0..10 {
        p.push(&Tuple::new(vec![
            Value::Int(i),
            Value::Int(i * 3 % 10),
            Value::Int(i * 97 % 1000),
            Value::str("pad"),
        ]))
        .expect("push");
    }
    p
}

/// Bytes of tuple data a kernel reads from one page.
fn page_data_bytes(p: &Page) -> u64 {
    (p.len() * p.schema().tuple_width()) as u64
}

fn operator_kernels(c: &mut Criterion) {
    let p = page();
    let s = schema();

    let pred = Predicate::cmp_const(&s, "val", CmpOp::Lt, Value::Int(500)).expect("pred");
    let mut g = c.benchmark_group("restrict_page_10_tuples");
    g.throughput(Throughput::Bytes(page_data_bytes(&p)));
    g.bench_function("decoded", |b| b.iter(|| restrict_page(&p, &pred)));
    g.bench_function("raw", |b| b.iter(|| restrict_page_raw(&p, &pred)));
    g.finish();

    let proj = Projection::new(&s, &["key", "val"]).expect("proj");
    let proj_schema = proj.output_schema(&s).expect("schema");
    let mut g = c.benchmark_group("project_page_10_tuples");
    g.throughput(Throughput::Bytes(page_data_bytes(&p)));
    g.bench_function("decoded", |b| b.iter(|| project_page(&p, &proj)));
    g.bench_function("raw", |b| {
        b.iter(|| project_page_raw(&p, &proj, &proj_schema))
    });
    g.finish();

    // A fused restrict→project→restrict span vs the materializing baseline
    // it replaces (each step repacks its survivors into an intermediate
    // page) — the per-unit work `TransferMode::Pipeline` fuses.
    let pred2 =
        Predicate::cmp_const(&proj_schema, "val", CmpOp::Ge, Value::Int(100)).expect("pred");
    let steps = vec![
        SpanStep::Restrict(pred.clone()),
        SpanStep::Project(proj.clone()),
        SpanStep::Restrict(pred2.clone()),
    ];
    let span_schema = span_output_schema(p.schema(), &steps).expect("schema");
    let mut g = c.benchmark_group("span_restrict_project_10_tuples");
    g.throughput(Throughput::Bytes(page_data_bytes(&p)));
    g.bench_function("stepwise", |b| {
        b.iter(|| {
            let mut mid = restrict_page_raw(&p, &pred);
            let cap = 16 + p.schema().tuple_width() * mid.len().max(1);
            let mut page = Page::new(p.schema().clone(), cap).expect("page");
            mid.drain_into(&mut page);
            let mut projected = project_page_raw(&page, &proj, &proj_schema);
            let cap = 16 + proj_schema.tuple_width() * projected.len().max(1);
            let mut page = Page::new(proj_schema.clone(), cap).expect("page");
            projected.drain_into(&mut page);
            restrict_page_raw(&page, &pred2)
        })
    });
    g.bench_function("fused", |b| {
        b.iter(|| span_page_raw(&p, &steps, &span_schema))
    });
    g.finish();

    let cond = JoinCondition::equi(&s, "fk", &s, "key").expect("cond");
    let joined_schema = s.concat(&s);
    let mut g = c.benchmark_group("join_pages_10x10");
    g.throughput(Throughput::Bytes(2 * page_data_bytes(&p)));
    g.bench_function("decoded", |b| b.iter(|| join_pages(&p, &p, &cond)));
    g.bench_function("raw", |b| {
        b.iter(|| join_pages_raw(&p, &p, &cond, &joined_schema))
    });
    g.finish();

    let pages = [&p, &p, &p, &p];
    let mut g = c.benchmark_group("dedup_4_pages");
    g.throughput(Throughput::Bytes(4 * page_data_bytes(&p)));
    g.bench_function("decoded", |b| {
        b.iter(|| dedup_tuples(pages.iter().flat_map(|pg| pg.tuples())))
    });
    g.bench_function("raw", |b| b.iter(|| dedup_pages_raw(&pages[..], &s)));
    g.finish();

    let tuple = p.get(0).expect("tuple");
    c.bench_function("tuple_encode_100B", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(100);
            tuple.encode(&s, &mut buf).expect("encode");
            buf
        })
    });

    let mut buf = Vec::new();
    tuple.encode(&s, &mut buf).expect("encode");
    c.bench_function("tuple_decode_100B", |b| {
        b.iter(|| Tuple::decode(&s, &buf).expect("decode"))
    });

    let mut g = c.benchmark_group("page_iterate_10_tuples");
    g.throughput(Throughput::Bytes(page_data_bytes(&p)));
    g.bench_function("decoded", |b| b.iter(|| p.tuples().count()));
    g.bench_function("refs", |b| b.iter(|| p.tuple_refs().count()));
    g.finish();
}

criterion_group!(benches, operator_kernels);
criterion_main!(benches);

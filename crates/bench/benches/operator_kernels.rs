//! Microbenchmarks of the page-at-a-time operator kernels and the tuple
//! codec — the per-packet work an instruction processor performs. These are
//! real CPU benchmarks (no simulation) guarding the hot path from
//! regressions.

use criterion::{criterion_group, criterion_main, Criterion};
use df_query::ops::{join_pages, project_page, restrict_page};
use df_relalg::{
    CmpOp, DataType, JoinCondition, Page, Predicate, Projection, Schema, Tuple, Value,
};

fn schema() -> Schema {
    Schema::build()
        .attr("key", DataType::Int)
        .attr("fk", DataType::Int)
        .attr("val", DataType::Int)
        .attr("pad", DataType::Str(76))
        .finish()
        .expect("schema")
}

/// A full 10-tuple page of 100-byte tuples — §3.3's standard page.
fn page() -> Page {
    let s = schema();
    let mut p = Page::new(s, 1016).expect("page");
    for i in 0..10 {
        p.push(&Tuple::new(vec![
            Value::Int(i),
            Value::Int(i * 3 % 10),
            Value::Int(i * 97 % 1000),
            Value::str("pad"),
        ]))
        .expect("push");
    }
    p
}

fn operator_kernels(c: &mut Criterion) {
    let p = page();
    let s = schema();

    let pred = Predicate::cmp_const(&s, "val", CmpOp::Lt, Value::Int(500)).expect("pred");
    c.bench_function("restrict_page_10_tuples", |b| {
        b.iter(|| restrict_page(&p, &pred))
    });

    let proj = Projection::new(&s, &["key", "val"]).expect("proj");
    c.bench_function("project_page_10_tuples", |b| {
        b.iter(|| project_page(&p, &proj))
    });

    let cond = JoinCondition::equi(&s, "fk", &s, "key").expect("cond");
    c.bench_function("join_pages_10x10", |b| b.iter(|| join_pages(&p, &p, &cond)));

    let tuple = p.get(0).expect("tuple");
    c.bench_function("tuple_encode_100B", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(100);
            tuple.encode(&s, &mut buf).expect("encode");
            buf
        })
    });

    let mut buf = Vec::new();
    tuple.encode(&s, &mut buf).expect("encode");
    c.bench_function("tuple_decode_100B", |b| {
        b.iter(|| Tuple::decode(&s, &buf).expect("decode"))
    });

    c.bench_function("page_iterate_10_tuples", |b| {
        b.iter(|| p.tuples().count())
    });
}

criterion_group!(benches, operator_kernels);
criterion_main!(benches);

//! ABL-PROJ — the §5 open problem, answered.
//!
//! "We have been examining the problem of the project operator for several
//! months and have not yet developed an algorithm for which a high degree
//! of parallelism can be maintained for the duration of the operator."
//!
//! This ablation runs a duplicate-eliminating projection over a large
//! relation with the blocking finalizer hash-partitioned into 1 (the
//! paper's serial case), 2, 4, 8, and 16 buckets, showing the wall-clock
//! effect of the partitioned algorithm. Duplicates always hash into the
//! same bucket, so per-bucket deduplication composes exactly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use df_core::{run_queries, AllocationStrategy, Granularity, MachineParams};
use df_query::parse_query;
use df_workload::{generate_database, DatabaseSpec};

fn tail_and_elapsed(m: &df_core::Metrics) -> (f64, f64) {
    // Blocking tail: from the producing restrict's completion to the
    // project's completion — the span the serial finalizer pins to one
    // processor.
    let restrict_done = m
        .instructions
        .iter()
        .find(|i| i.op_name == "restrict")
        .and_then(|i| i.completed)
        .expect("restrict ran");
    let project_done = m
        .instructions
        .iter()
        .find(|i| i.op_name == "project")
        .and_then(|i| i.completed)
        .expect("project ran");
    (
        project_done.saturating_since(restrict_done).as_secs_f64(),
        m.elapsed.as_secs_f64(),
    )
}

fn abl_parallel_project(c: &mut Criterion) {
    let db = generate_database(&DatabaseSpec::scaled(0.2));
    let q = parse_query(
        &db,
        "(project-distinct (restrict (scan r00) true) (fk val))",
    )
    .expect("query");
    let run = |buckets: usize| {
        let mut params = MachineParams::with_processors(16);
        params.dedup_buckets = buckets;
        params.cache.frames = 2048;
        run_queries(
            &db,
            std::slice::from_ref(&q),
            &params,
            Granularity::Page,
            AllocationStrategy::default(),
        )
        .expect("runs")
        .metrics
    };
    eprintln!("\nABL-PROJ (scale 0.2): hash-partitioned duplicate elimination, 16 processors");
    let (serial_tail, _) = tail_and_elapsed(&run(1));
    for buckets in [1usize, 2, 4, 8, 16] {
        let m = run(buckets);
        let (tail, total) = tail_and_elapsed(&m);
        eprintln!(
            "  buckets={buckets:2}  blocking tail={tail:7.3}s (speedup {:4.2}x)  total={total:7.3}s",
            serial_tail / tail.max(1e-9),
        );
    }

    let mut group = c.benchmark_group("abl_parallel_project");
    group.sample_size(10);
    for buckets in [1usize, 8] {
        group.bench_with_input(BenchmarkId::new("distinct", buckets), &buckets, |b, &n| {
            b.iter(|| run(n))
        });
    }
    group.finish();
}

criterion_group!(benches, abl_parallel_project);
criterion_main!(benches);

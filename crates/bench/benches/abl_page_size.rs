//! ABL-PGSZ — the page-size trade-off of §3.3.
//!
//! "While increasing the page size to 10,000 bytes will obviously decrease
//! the arbitration network bandwidth requirements by another order of
//! magnitude, such an increase may have an adverse effect on query
//! execution time because it may reduce the maximum degree of concurrency."
//! This ablation sweeps the page size and reports simulated time, network
//! traffic, and the number of schedulable work units (the concurrency pool).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use df_bench::{fig31_params, setup};
use df_core::{run_queries, AllocationStrategy, Granularity};
use df_workload::generate_database;

fn abl_page_size(c: &mut Criterion) {
    let s = setup(0.05);
    // Regenerate the database at each page size (the database's own pages
    // must match the machine's).
    eprintln!("\nABL-PGSZ (scale 0.05): page-size sweep at 16 processors");
    eprintln!(
        "  {:>7} {:>10} {:>12} {:>10}",
        "page B", "elapsed", "arb net KB", "units"
    );
    let run_at = |page_size: usize| {
        let mut spec = s.spec.clone();
        spec.database.page_size = page_size;
        let db = generate_database(&spec.database);
        let queries = df_workload::benchmark_queries(&db, &spec).expect("queries");
        let mut params = fig31_params(&s, 16);
        params.page_size = page_size;
        params.cache.frames = (db.total_bytes() / page_size / 5).max(16);
        run_queries(
            &db,
            &queries,
            &params,
            Granularity::Page,
            AllocationStrategy::default(),
        )
        .expect("runs")
        .metrics
    };
    for page_size in [1016usize, 2016, 4016, 8016, 16016] {
        let m = run_at(page_size);
        eprintln!(
            "  {:>7} {:>9.3}s {:>12} {:>10}",
            page_size,
            m.elapsed.as_secs_f64(),
            m.arbitration.bytes / 1024,
            m.units_dispatched
        );
    }

    let mut group = c.benchmark_group("abl_page_size");
    group.sample_size(10);
    for page_size in [1016usize, 8016] {
        group.bench_with_input(
            BenchmarkId::new("benchmark", page_size),
            &page_size,
            |b, &ps| b.iter(|| run_at(ps)),
        );
    }
    group.finish();
}

criterion_group!(benches, abl_page_size);
criterion_main!(benches);

//! Property tests of the Figure 4.3/4.4/4.5 packet codecs: round-trip
//! identity, size formulas, and corruption rejection on arbitrary inputs.

use df_ring::packet::{
    instruction_packet_size, result_packet_size, ControlMessage, ControlPacket, InstructionPacket,
    Opcode, OperandSection, ResultPacket, CONTROL_PACKET_SIZE, INSTRUCTION_HEADER_BYTES,
    OPERAND_HEADER_BYTES,
};
use proptest::prelude::*;

fn arb_name() -> impl Strategy<Value = String> {
    prop::collection::vec(prop::char::range('a', 'z'), 1..=8)
        .prop_map(|cs| cs.into_iter().collect())
}

fn arb_opcode() -> impl Strategy<Value = Opcode> {
    prop_oneof![
        Just(Opcode::Restrict),
        Just(Opcode::Project),
        Just(Opcode::Join),
        Just(Opcode::Cross),
        Just(Opcode::Union),
        Just(Opcode::Difference),
        Just(Opcode::ProjectDistinct),
        Just(Opcode::Copy),
        Just(Opcode::Delete),
    ]
}

fn arb_operand() -> impl Strategy<Value = OperandSection> {
    (
        arb_name(),
        any::<u16>(),
        prop::collection::vec(any::<u8>(), 0..600),
    )
        .prop_map(|(relation_name, tuple_length, data_page)| OperandSection {
            relation_name,
            tuple_length,
            data_page,
        })
}

fn arb_instruction() -> impl Strategy<Value = InstructionPacket> {
    (
        any::<u16>(),
        any::<u16>(),
        any::<u16>(),
        any::<u16>(),
        any::<bool>(),
        arb_opcode(),
        arb_name(),
        any::<u16>(),
        prop::collection::vec(arb_operand(), 0..3),
    )
        .prop_map(
            |(
                ipid,
                query_id,
                icid_sender,
                icid_destination,
                flush,
                opcode,
                result_relation,
                result_tuple_length,
                operands,
            )| {
                InstructionPacket {
                    ipid,
                    query_id,
                    icid_sender,
                    icid_destination,
                    flush_when_done: flush,
                    opcode,
                    result_relation,
                    result_tuple_length,
                    operands,
                }
            },
        )
}

fn arb_control_message() -> impl Strategy<Value = ControlMessage> {
    prop_oneof![
        Just(ControlMessage::Done),
        any::<u32>().prop_map(|index| ControlMessage::RequestInner { index }),
        any::<u32>().prop_map(|index| ControlMessage::RequestMissed { index }),
        Just(ControlMessage::RequestOuter),
    ]
}

proptest! {
    /// Instruction packets round-trip and honour the Fig 4.3 size formula.
    #[test]
    fn instruction_round_trip(p in arb_instruction()) {
        let bytes = p.encode().unwrap();
        prop_assert_eq!(bytes.len(), p.wire_size());
        let sizes: Vec<usize> = p.operands.iter().map(|o| o.data_page.len()).collect();
        prop_assert_eq!(
            p.wire_size(),
            INSTRUCTION_HEADER_BYTES
                + sizes.iter().map(|b| OPERAND_HEADER_BYTES + b).sum::<usize>()
        );
        prop_assert_eq!(instruction_packet_size(&sizes), p.wire_size());
        let back = InstructionPacket::decode(&bytes).unwrap();
        prop_assert_eq!(back, p);
    }

    /// Truncating an instruction packet anywhere makes it undecodable (or
    /// decodable only by rejecting the length field).
    #[test]
    fn truncated_instruction_rejected(p in arb_instruction(), cut in 1usize..64) {
        let bytes = p.encode().unwrap();
        let cut = cut.min(bytes.len().saturating_sub(1));
        if cut > 0 {
            let trunc = &bytes[..bytes.len() - cut];
            prop_assert!(InstructionPacket::decode(trunc).is_err());
        }
    }

    /// Result packets round-trip.
    #[test]
    fn result_round_trip(
        icid in any::<u16>(),
        relation_name in arb_name(),
        data_page in prop::collection::vec(any::<u8>(), 0..800),
    ) {
        let p = ResultPacket { icid, relation_name, data_page };
        let bytes = p.encode().unwrap();
        prop_assert_eq!(bytes.len(), result_packet_size(p.data_page.len()));
        prop_assert_eq!(ResultPacket::decode(&bytes).unwrap(), p);
    }

    /// Control packets round-trip at their fixed size.
    #[test]
    fn control_round_trip(
        icid in any::<u16>(),
        ipid_sender in any::<u16>(),
        message in arb_control_message(),
    ) {
        let p = ControlPacket { icid, ipid_sender, message };
        let bytes = p.encode();
        prop_assert_eq!(bytes.len(), CONTROL_PACKET_SIZE);
        prop_assert_eq!(ControlPacket::decode(&bytes).unwrap(), p);
    }

    /// Arbitrary byte soup never panics the decoders.
    #[test]
    fn decoders_never_panic_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = InstructionPacket::decode(&bytes);
        let _ = ResultPacket::decode(&bytes);
        let _ = ControlPacket::decode(&bytes);
    }
}

//! End-to-end tests of the §4 ring machine against the uniprocessor oracle.

use df_query::{execute_readonly, parse_query, ExecParams};
use df_relalg::{Catalog, DataType, Relation, Schema, Tuple, Value};
use df_ring::{run_ring_queries, run_ring_queries_at, RingParams};
use df_sim::SimTime;

fn db() -> Catalog {
    let mut db = Catalog::new();
    let s = Schema::build()
        .attr("k", DataType::Int)
        .attr("v", DataType::Int)
        .finish()
        .unwrap();
    for (name, n) in [("a", 40i64), ("b", 24i64), ("c", 12i64)] {
        db.insert(
            Relation::from_tuples(
                name,
                s.clone(),
                16 + 16 * 4, // 4 tuples per page
                (0..n).map(|i| Tuple::new(vec![Value::Int(i), Value::Int(i % 6)])),
            )
            .unwrap(),
        )
        .unwrap();
    }
    db
}

fn small_params() -> RingParams {
    let mut p = RingParams::with_pools(3, 6);
    p.page_size = 16 + 16 * 4;
    p.ic_memory_pages = 8;
    p.cache.frames = 32;
    p
}

fn check_against_oracle(db: &Catalog, q: &str, params: &RingParams) -> df_ring::RingMetrics {
    let tree = parse_query(db, q).unwrap();
    let oracle = execute_readonly(db, &tree, &ExecParams::default()).unwrap();
    let out = run_ring_queries(db, &[tree], params).unwrap();
    assert!(
        out.results[0].same_contents(&oracle),
        "ring result ({} tuples) != oracle ({} tuples) for {q}",
        out.results[0].num_tuples(),
        oracle.num_tuples()
    );
    out.metrics
}

#[test]
fn restrict_matches_oracle() {
    let db = db();
    let m = check_against_oracle(&db, "(restrict (scan a) (> k 10))", &small_params());
    assert!(m.elapsed > SimTime::ZERO);
    assert!(m.instruction_packets > 0);
    assert!(m.result_packets > 0);
}

#[test]
fn join_matches_oracle_and_uses_broadcasts() {
    let db = db();
    let m = check_against_oracle(
        &db,
        "(join (restrict (scan a) (< k 30)) (scan b) (= v k))",
        &small_params(),
    );
    assert!(m.broadcasts > 0, "join protocol must broadcast inner pages");
    assert!(m.control_packets > 0);
}

#[test]
fn deep_chain_matches_oracle() {
    let db = db();
    check_against_oracle(
        &db,
        "(join (join (restrict (scan a) (< k 32)) (scan b) (= v k)) (scan c) (= r_v k))",
        &small_params(),
    );
}

#[test]
fn blocking_operators_match_oracle() {
    let db = db();
    for q in [
        "(project-distinct (scan a) (v))",
        "(union (restrict (scan a) (< k 10)) (restrict (scan a) (>= k 5)))",
        "(difference (scan a) (restrict (scan a) (< k 35)))",
    ] {
        check_against_oracle(&db, q, &small_params());
    }
}

#[test]
fn tiny_ip_memory_exercises_missed_page_catchup() {
    let db = db();
    let mut p = small_params();
    p.ip_memory_pages = 2; // outer + one inner: broadcasts often ignored
    p.ips = 4;
    let m = check_against_oracle(&db, "(join (scan a) (scan b) (= v k))", &p);
    assert!(
        m.pages_missed > 0,
        "2-page IPs must miss some broadcasts (got {} misses)",
        m.pages_missed
    );
}

#[test]
fn multi_query_batch_matches_oracle() {
    let db = db();
    let queries = [
        "(restrict (scan a) (> k 5))",
        "(join (scan b) (scan c) (= v k))",
        "(restrict (scan c) (< k 9))",
    ];
    let trees: Vec<_> = queries
        .iter()
        .map(|q| parse_query(&db, q).unwrap())
        .collect();
    let oracles: Vec<_> = trees
        .iter()
        .map(|t| execute_readonly(&db, t, &ExecParams::default()).unwrap())
        .collect();
    let out = run_ring_queries(&db, &trees, &small_params()).unwrap();
    for (i, (res, ora)) in out.results.iter().zip(&oracles).enumerate() {
        assert!(res.same_contents(ora), "query {i} mismatch");
    }
    assert_eq!(out.metrics.query_completions.len(), 3);
}

#[test]
fn concurrency_control_serializes_writers() {
    let mut db = db();
    let q1 = parse_query(&db, "(delete a (< k 10))").unwrap();
    let q2 = parse_query(&db, "(restrict (scan a) (> k 0))").unwrap();
    let params = small_params();
    let out = run_ring_queries(&db, &[q1, q2], &params).unwrap();
    // The reader conflicts with the deleter: one of them must wait.
    assert!(
        out.metrics.queries_delayed_by_cc >= 1,
        "expected CC to delay a conflicting query"
    );
    // Apply the delete and check the database.
    out.apply_updates(&mut db).unwrap();
    assert_eq!(db.get("a").unwrap().num_tuples(), 30);
}

#[test]
fn concurrency_control_admits_disjoint_queries_together() {
    let db = db();
    let q1 = parse_query(&db, "(restrict (scan a) (> k 0))").unwrap();
    let q2 = parse_query(&db, "(restrict (scan b) (> k 0))").unwrap();
    let out = run_ring_queries(&db, &[q1, q2], &small_params()).unwrap();
    assert_eq!(out.metrics.queries_delayed_by_cc, 0);
}

#[test]
fn deterministic_metrics() {
    let db = db();
    let q = "(join (scan a) (scan b) (= v k))";
    let m1 = check_against_oracle(&db, q, &small_params());
    let m2 = check_against_oracle(&db, q, &small_params());
    assert_eq!(m1.elapsed, m2.elapsed);
    assert_eq!(m1.outer_ring.bytes, m2.outer_ring.bytes);
    assert_eq!(m1.broadcasts, m2.broadcasts);
    assert_eq!(m1.instruction_packets, m2.instruction_packets);
}

#[test]
fn direct_routing_reduces_outer_ring_traffic() {
    let db = db();
    let q = "(join (restrict (scan a) (< k 36)) (restrict (scan b) (< k 20)) (= v k))";
    let mut with = small_params();
    with.direct_routing = true;
    let m_direct = check_against_oracle(&db, q, &with);
    let m_normal = check_against_oracle(&db, q, &small_params());
    assert!(m_direct.direct_routed_pages > 0, "direct routing unused");
    assert!(
        m_direct.outer_ring.bytes < m_normal.outer_ring.bytes,
        "direct {} !< normal {}",
        m_direct.outer_ring.bytes,
        m_normal.outer_ring.bytes
    );
}

#[test]
fn more_ips_do_not_slow_the_machine_down_much() {
    let db = db();
    let q = "(join (scan a) (scan b) (= v k))";
    let tree = parse_query(&db, q).unwrap();
    let mut last = None;
    for ips in [1usize, 2, 6] {
        let mut p = small_params();
        p.ips = ips;
        let out = run_ring_queries(&db, std::slice::from_ref(&tree), &p).unwrap();
        if let Some(prev) = last {
            // Allow mild protocol overhead, but more IPs must not blow up.
            assert!(
                out.metrics.elapsed.as_secs_f64() <= 1.5 * f64::max(prev, 1e-9),
                "{ips} IPs: {} vs previous {prev}",
                out.metrics.elapsed
            );
        }
        last = Some(out.metrics.elapsed.as_secs_f64());
    }
}

#[test]
fn staggered_arrivals_run_and_measure_response_times() {
    let db = db();
    let queries = [
        "(restrict (scan a) (> k 5))",
        "(join (scan b) (scan c) (= v k))",
        "(restrict (scan c) (< k 9))",
    ];
    let trees: Vec<_> = queries
        .iter()
        .map(|q| parse_query(&db, q).unwrap())
        .collect();
    let oracles: Vec<_> = trees
        .iter()
        .map(|t| execute_readonly(&db, t, &ExecParams::default()).unwrap())
        .collect();
    let arrivals = [
        SimTime::ZERO,
        SimTime::from_nanos(50_000_000),  // 50 ms
        SimTime::from_nanos(400_000_000), // 400 ms
    ];
    let out = run_ring_queries_at(&db, &trees, &arrivals, &small_params()).unwrap();
    for (i, (res, ora)) in out.results.iter().zip(&oracles).enumerate() {
        assert!(res.same_contents(ora), "query {i} mismatch under arrivals");
    }
    // No query can finish before it arrives; response = completion − arrival.
    let responses = out.metrics.response_times();
    assert_eq!(responses.len(), 3);
    for ((done, arrived), resp) in out
        .metrics
        .query_completions
        .iter()
        .zip(&arrivals)
        .zip(&responses)
    {
        assert!(done > arrived, "completed before arrival");
        assert_eq!(done.saturating_since(*arrived), *resp);
    }
    // The late query must not have started before its arrival: its
    // completion is strictly after 400 ms.
    assert!(out.metrics.query_completions[2] > arrivals[2]);
}

#[test]
fn writer_arriving_mid_read_waits_for_lock_release() {
    let mut db = db();
    // Long reader on `a` starts at t=0; a delete on `a` arrives early while
    // the reader is still running and must wait for admission.
    let reader = parse_query(&db, "(join (scan a) (scan a) (= v k))").unwrap();
    let deleter = parse_query(&db, "(delete a (< k 10))").unwrap();
    let arrivals = [SimTime::ZERO, SimTime::from_nanos(1_000_000)];
    let out =
        run_ring_queries_at(&db, &[reader.clone(), deleter], &arrivals, &small_params()).unwrap();
    assert!(
        out.metrics.query_completions[1] >= out.metrics.query_completions[0],
        "the writer must be serialized after the conflicting reader"
    );
    // The reader saw the pre-delete state.
    let oracle = execute_readonly(&db, &reader, &ExecParams::default()).unwrap();
    assert!(out.results[0].same_contents(&oracle));
    out.apply_updates(&mut db).unwrap();
    assert_eq!(db.get("a").unwrap().num_tuples(), 30);
}

#[test]
fn empty_results_complete_cleanly() {
    let db = db();
    let m = check_against_oracle(&db, "(restrict (scan a) (> k 999))", &small_params());
    assert!(m.elapsed > SimTime::ZERO);
}

#[test]
fn bare_scan_round_trips() {
    let db = db();
    check_against_oracle(&db, "(scan c)", &small_params());
}

#[test]
fn hash_join_matches_nested_and_finishes_sooner() {
    let db = db();
    let q = "(join (restrict (scan a) (< k 30)) (scan b) (= v k))";
    let nested_m = check_against_oracle(&db, q, &small_params());
    let mut hp = small_params();
    hp.join_algo = df_core::JoinAlgo::Hash;
    let hash_m = check_against_oracle(&db, q, &hp);
    // Hash-path joins charge n + m tuple operations per page pair instead
    // of the n * m sweep, so IP service time (and the makespan of this
    // join-dominated batch) must not grow.
    assert!(
        hash_m.elapsed <= nested_m.elapsed,
        "hash join slower on the ring: {} > {}",
        hash_m.elapsed,
        nested_m.elapsed
    );
}

#[test]
fn non_equi_join_under_hash_algo_matches_oracle_on_ring() {
    let db = db();
    let mut p = small_params();
    p.join_algo = df_core::JoinAlgo::Hash;
    // θ-join: the hash algorithm must silently degrade to nested loops.
    check_against_oracle(
        &db,
        "(join (restrict (scan a) (< k 8)) (restrict (scan b) (< k 6)) (< v k))",
        &p,
    );
}

/// Observability: the per-interval bandwidth series are fed from exactly
/// the sends that feed the `ByteCounter`s, so their totals must agree to
/// the byte — and an installed tracer's path counters must agree too.
#[test]
fn bandwidth_series_totals_equal_byte_counters_exactly() {
    use df_obs::{Path, Tracer};
    use std::sync::Arc;

    let db = db();
    let tracer = Arc::new(Tracer::new(Tracer::DEFAULT_CAPACITY));
    let mut params = small_params();
    params.trace = Some(Arc::clone(&tracer));
    let q = "(join (restrict (scan a) (< k 30)) (scan b) (= v k))";
    let tree = parse_query(&db, q).unwrap();
    let m = run_ring_queries(&db, &[tree], &params).unwrap().metrics;

    assert_eq!(m.inner_ring_series.total_bytes(), m.inner_ring.bytes);
    assert_eq!(m.outer_ring_series.total_bytes(), m.outer_ring.bytes);
    assert_eq!(
        m.disk_series.total_bytes(),
        m.disk_read.bytes + m.disk_write.bytes
    );
    assert_eq!(
        m.cache_series.total_bytes(),
        m.cache_in.bytes + m.cache_out.bytes
    );
    assert!(m.outer_ring_series.total_bytes() > 0, "join moved pages");

    // The tracer saw the same transfers, stamped with simulated time.
    let snap = tracer.snapshot();
    assert_eq!(snap.bytes(Path::InnerRing), m.inner_ring.bytes);
    assert_eq!(snap.bytes(Path::OuterRing), m.outer_ring.bytes);
    assert_eq!(
        snap.bytes(Path::DiskRead) + snap.bytes(Path::DiskWrite),
        m.disk_read.bytes + m.disk_write.bytes
    );
    assert_eq!(
        snap.bytes(Path::CacheIn) + snap.bytes(Path::CacheOut),
        m.cache_in.bytes + m.cache_out.bytes
    );
    // Simulated timestamps: every event's time is within the makespan.
    let horizon = m.elapsed.as_nanos();
    assert!(snap.events.iter().all(|e| e.t_ns <= horizon));
}

//! Ring-machine metrics — the quantities Figure 4.2 plots.

use std::fmt;

use df_obs::IntervalSeries;
use df_sim::stats::ByteCounter;
use df_sim::{Duration, SimTime};

/// Whole-run metrics for the ring machine.
#[derive(Debug, Clone, Default)]
pub struct RingMetrics {
    /// Makespan.
    pub elapsed: SimTime,
    /// Number of IPs configured.
    pub ips: usize,
    /// Number of ICs configured.
    pub ics: usize,
    /// Traffic on the inner (control) ring.
    pub inner_ring: ByteCounter,
    /// Traffic on the outer (data) ring.
    pub outer_ring: ByteCounter,
    /// Bytes read from mass storage.
    pub disk_read: ByteCounter,
    /// Bytes written to mass storage.
    pub disk_write: ByteCounter,
    /// Bytes into the disk cache.
    pub cache_in: ByteCounter,
    /// Bytes out of the disk cache.
    pub cache_out: ByteCounter,
    /// Total IP busy time.
    pub ip_busy: Duration,
    /// Instruction packets sent by ICs.
    pub instruction_packets: u64,
    /// Result packets sent by IPs.
    pub result_packets: u64,
    /// Control packets sent by IPs.
    pub control_packets: u64,
    /// Inner-page broadcasts performed.
    pub broadcasts: u64,
    /// Advance requests the ICs ignored under the "soon afterwards" rule.
    pub requests_ignored: u64,
    /// Broadcast pages IPs missed (memory full) and later caught up on.
    pub pages_missed: u64,
    /// Result pages routed directly IP→IP (§5 extension), if enabled.
    pub direct_routed_pages: u64,
    /// Per-query completion times.
    pub query_completions: Vec<SimTime>,
    /// Per-query arrival (submission) times.
    pub query_arrivals: Vec<SimTime>,
    /// Queries that had to wait for concurrency-control admission.
    pub queries_delayed_by_cc: u64,
    /// Peak number of IPs computing simultaneously.
    pub peak_busy_ips: u64,
    /// Peak number of IPs granted to instructions simultaneously.
    pub peak_granted_ips: u64,
    /// Per-instruction timeline: (operator, query, first packet sent,
    /// completed).
    pub instruction_timeline: Vec<(String, usize, SimTime, SimTime)>,
    /// Per-interval inner-ring demand over simulated time. Totals equal
    /// `inner_ring.bytes` exactly (both are fed from the same sends).
    pub inner_ring_series: IntervalSeries,
    /// Per-interval outer-ring demand — Figure 4.2's curve, not just its
    /// average. Totals equal `outer_ring.bytes` exactly.
    pub outer_ring_series: IntervalSeries,
    /// Per-interval mass-storage demand, reads and writes combined.
    pub disk_series: IntervalSeries,
    /// Per-interval disk-cache demand, both directions combined.
    pub cache_series: IntervalSeries,
}

impl RingMetrics {
    /// Average outer-ring load in Mbps (the Figure 4.2 y-axis).
    pub fn outer_ring_mbps(&self) -> f64 {
        self.outer_ring.mean_bandwidth_mbps(self.elapsed)
    }

    /// Average inner-ring load in Mbps.
    pub fn inner_ring_mbps(&self) -> f64 {
        self.inner_ring.mean_bandwidth_mbps(self.elapsed)
    }

    /// Average disk bandwidth (both directions) in Mbps.
    pub fn disk_mbps(&self) -> f64 {
        let mut t = self.disk_read;
        t.merge(&self.disk_write);
        t.mean_bandwidth_mbps(self.elapsed)
    }

    /// Average cache bandwidth (both directions) in Mbps.
    pub fn cache_mbps(&self) -> f64 {
        let mut t = self.cache_in;
        t.merge(&self.cache_out);
        t.mean_bandwidth_mbps(self.elapsed)
    }

    /// Per-query response times (completion − arrival).
    pub fn response_times(&self) -> Vec<Duration> {
        self.query_completions
            .iter()
            .zip(&self.query_arrivals)
            .map(|(&done, &arrived)| done.saturating_since(arrived))
            .collect()
    }

    /// The bandwidth-demand curves by stable path name, for the
    /// `BENCH_*.json` series rows.
    pub fn bandwidth_series(&self) -> [(&'static str, &IntervalSeries); 4] {
        [
            ("inner_ring", &self.inner_ring_series),
            ("outer_ring", &self.outer_ring_series),
            ("disk", &self.disk_series),
            ("cache", &self.cache_series),
        ]
    }

    /// Mean IP utilization over the makespan.
    pub fn ip_utilization(&self) -> f64 {
        let denom = self.elapsed.as_nanos() as f64 * self.ips as f64;
        if denom == 0.0 {
            0.0
        } else {
            self.ip_busy.as_nanos() as f64 / denom
        }
    }
}

impl fmt::Display for RingMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "elapsed        : {}", self.elapsed)?;
        writeln!(
            f,
            "pools          : {} ICs, {} IPs ({:.1}% utilized)",
            self.ics,
            self.ips,
            self.ip_utilization() * 100.0
        )?;
        writeln!(
            f,
            "inner ring     : {} bytes, {:.3} Mbps avg",
            self.inner_ring.bytes,
            self.inner_ring_mbps()
        )?;
        writeln!(
            f,
            "outer ring     : {} bytes, {:.3} Mbps avg",
            self.outer_ring.bytes,
            self.outer_ring_mbps()
        )?;
        writeln!(
            f,
            "disk           : {} B read, {} B written, {:.3} Mbps avg",
            self.disk_read.bytes,
            self.disk_write.bytes,
            self.disk_mbps()
        )?;
        writeln!(
            f,
            "cache          : {} B in, {} B out, {:.3} Mbps avg",
            self.cache_in.bytes,
            self.cache_out.bytes,
            self.cache_mbps()
        )?;
        writeln!(
            f,
            "packets        : {} instruction, {} result, {} control",
            self.instruction_packets, self.result_packets, self.control_packets
        )?;
        writeln!(
            f,
            "join protocol  : {} broadcasts, {} requests ignored, {} pages missed",
            self.broadcasts, self.requests_ignored, self.pages_missed
        )?;
        if self.direct_routed_pages > 0 {
            writeln!(
                f,
                "direct routing : {} pages IP->IP",
                self.direct_routed_pages
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_views() {
        let mut m = RingMetrics {
            elapsed: SimTime::from_nanos(1_000_000_000),
            ips: 4,
            ..RingMetrics::default()
        };
        m.outer_ring.record(5_000_000);
        assert!((m.outer_ring_mbps() - 40.0).abs() < 1e-9);
        m.ip_busy = Duration::from_millis(2_000);
        assert!((m.ip_utilization() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn zero_safe() {
        let m = RingMetrics::default();
        assert_eq!(m.outer_ring_mbps(), 0.0);
        assert_eq!(m.ip_utilization(), 0.0);
    }

    #[test]
    fn display_mentions_protocol_counters() {
        let m = RingMetrics::default();
        let s = format!("{m}");
        assert!(s.contains("broadcasts"));
        assert!(s.contains("outer ring"));
    }
}

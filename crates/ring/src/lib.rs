//! # df-ring — the Section-4 ring-based data-flow database machine
//!
//! The paper's §4 proposes a machine with **distributed control**: a master
//! controller (MC) and a set of instruction controllers (ICs) on an *inner*
//! control ring, a pool of instruction processors (IPs) joined to the ICs by
//! an *outer* data ring, and a multiport disk cache in front of mass
//! storage. This crate simulates that machine end to end:
//!
//! * [`packet`] — the exact packet formats of Figures 4.3/4.4/4.5
//!   (instruction, result, and control packets) with byte-accurate wire
//!   encodings;
//! * [`Ring`] — a shift-register-insertion ring (the Distributed Loop
//!   Computer Network of \[13\]): per-sender serialization, per-hop latency,
//!   variable-length messages, and single-transmission **broadcast**;
//! * [`LockTable`] — the MC's concurrency control (requirement 1):
//!   relation-granularity shared/exclusive locks deciding "which queries are
//!   permitted to execute concurrently";
//! * [`RingMachine`] — the full machine: MC query admission and IP-pool
//!   arbitration, ICs running the §4.2 instruction protocol (page tables,
//!   partial-page compaction, flush-when-done), IPs running real operator
//!   kernels with **IRC vectors** and the missed-broadcast catch-up protocol
//!   for joins, and the §5 *direct IP→IP routing* extension as an option.
//!
//! Like `df-core`, the data path is exact — IPs execute the kernels of
//! `df-query::ops` on real pages — so ring-machine results are checked
//! against the uniprocessor oracle by the integration tests. Figure 4.2
//! (ring/cache/disk bandwidth vs. number of IPs) is regenerated from this
//! machine's measured byte counters.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod packet;

mod ic;
mod ip;
mod machine;
mod mc;
mod metrics;
mod params;
mod ring;

// The lock manager moved to `df-core` so the `df-host` real-threads
// executor can share it; re-exported here so `df_ring::LockTable` keeps
// working (and the MC docs above stay accurate).
pub use df_core::{LockRequest, LockTable};
pub use machine::{run_ring_queries, run_ring_queries_at, RingMachine, RingRunOutput};
pub use metrics::RingMetrics;
pub use params::RingParams;
pub use ring::Ring;

//! Configuration of the ring machine.

use std::sync::Arc;

use df_core::{CostModel, JoinAlgo, TransferMode};
use df_obs::Tracer;
use df_sim::Duration;
use df_storage::{CacheParams, DiskParams};

/// Full configuration of the §4 machine.
#[derive(Debug, Clone)]
pub struct RingParams {
    /// Number of instruction controllers.
    pub ics: usize,
    /// Number of instruction processors.
    pub ips: usize,
    /// Inner (control) ring bit rate. Paper §4.1: "a bandwidth of 1-2
    /// million bits per second should be sufficient" — default 2 Mbps.
    pub inner_ring_bps: f64,
    /// Outer (data) ring bit rate. Paper §4.1: 25 ns shift registers give
    /// 40 Mbps — the default.
    pub outer_ring_bps: f64,
    /// Per-hop forwarding latency of the shift-register insertion ring.
    pub hop_latency: Duration,
    /// IP processing speed (defaults to the LSI-11 model of `df-core`).
    pub cost: CostModel,
    /// Join algorithm for the IPs' page-pair units. `Hash` replaces each
    /// inner-page scan with a raw-byte key-index probe, shrinking IP
    /// service time from n·m to n + m tuple operations per pair — the §4.2
    /// broadcast protocol and IRC bookkeeping are unchanged, so Fig-4.2
    /// bandwidth curves can be re-derived under both algorithms.
    pub join_algo: JoinAlgo,
    /// How results move between chained unary operators: `Materialize`
    /// (one result page per instruction cell, the paper's design) or
    /// `Pipeline` (restrict→project chains fused into spans at compile
    /// time — one IP computation and one result-packet stream per chain,
    /// charged the sum of the step costs but a single transfer).
    pub transfer: TransferMode,
    /// Page size in bytes (header included). Figure 4.2 assumes "16K byte
    /// operands"; the default stays at the §3.3 analysis size of ~1 KB and
    /// the `fig_4_2` bench overrides it.
    pub page_size: usize,
    /// IP local memory capacity in pages (outer page + inner-page queue).
    /// Small values exercise the missed-broadcast / IRC catch-up protocol.
    pub ip_memory_pages: usize,
    /// IC local memory capacity in pages.
    pub ic_memory_pages: usize,
    /// The multiport disk cache shared by the ICs (segmented per IC).
    pub cache: CacheParams,
    /// Mass storage.
    pub disk: DiskParams,
    /// Enable MC concurrency control (requirement 1). When off, every query
    /// is admitted immediately (read-only batches are unaffected).
    pub concurrency_control: bool,
    /// §5 future-work extension: route result pages directly from producer
    /// IP to a consumer IP, skipping the store-and-forward hop through the
    /// destination IC. Reduces outer-ring traffic at the cost of IP
    /// complexity; `abl_direct_route` measures the trade.
    pub direct_routing: bool,
    /// How long after broadcasting an inner page the IC ignores further
    /// *advance* requests for the same page (the paper's requests arriving
    /// "soon afterwards can be ignored"). Must be at least the worst-case
    /// outer-ring transit time for the starvation-freedom argument in
    /// `machine.rs` to hold; [`RingParams::validate`] enforces it.
    pub rebroadcast_window: Duration,
    /// Structured event tracer (see [`df_obs::Tracer`]). `None` — the
    /// default — costs one branch per would-be event. An installed tracer
    /// receives every ring/cache/disk transfer stamped with *simulated*
    /// time, so traced byte totals equal the [`crate::RingMetrics`]
    /// counters exactly.
    pub trace: Option<Arc<Tracer>>,
}

impl Default for RingParams {
    fn default() -> Self {
        RingParams {
            ics: 4,
            ips: 8,
            inner_ring_bps: 2_000_000.0,
            outer_ring_bps: 40_000_000.0,
            hop_latency: Duration::from_micros(2),
            cost: CostModel::default(),
            join_algo: JoinAlgo::default(),
            transfer: TransferMode::default(),
            page_size: 1016,
            ip_memory_pages: 4,
            ic_memory_pages: 64,
            cache: CacheParams {
                frames: 1024,
                ..CacheParams::default()
            },
            disk: DiskParams::default(),
            concurrency_control: true,
            direct_routing: false,
            rebroadcast_window: Duration::from_millis(2),
            trace: None,
        }
    }
}

impl RingParams {
    /// Convenience: default machine with the given pool sizes.
    pub fn with_pools(ics: usize, ips: usize) -> RingParams {
        RingParams {
            ics,
            ips,
            ..RingParams::default()
        }
    }

    /// Worst-case transit time of a `bytes`-byte message on the outer ring
    /// (full circle).
    pub fn outer_transit(&self, bytes: usize) -> Duration {
        let nodes = self.ics + self.ips;
        Duration::from_secs_f64(bytes as f64 * 8.0 / self.outer_ring_bps)
            + self.hop_latency.saturating_mul(nodes as u64)
    }

    /// Check invariants.
    ///
    /// # Panics
    /// Panics on empty pools or a rebroadcast window shorter than the
    /// worst-case page transit (which would break the join protocol's
    /// starvation-freedom guarantee).
    pub fn validate(&self) {
        assert!(self.ics > 0, "machine needs at least one IC");
        assert!(self.ips > 0, "machine needs at least one IP");
        assert!(
            self.ip_memory_pages >= 2,
            "an IP holds an outer page plus at least one inner page"
        );
        let transit = self.outer_transit(self.page_size + 64);
        assert!(
            self.rebroadcast_window >= transit,
            "rebroadcast window {} shorter than worst-case page transit {transit}",
            self.rebroadcast_window
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_rates() {
        let p = RingParams::default();
        assert_eq!(p.outer_ring_bps, 40_000_000.0);
        assert!(p.inner_ring_bps <= 2_000_000.0);
        p.validate();
    }

    #[test]
    fn outer_transit_scales_with_size_and_nodes() {
        let p = RingParams::with_pools(2, 2);
        let small = p.outer_transit(100);
        let big = p.outer_transit(10_000);
        assert!(big > small);
        let wide = RingParams::with_pools(2, 50).outer_transit(100);
        assert!(wide > small);
    }

    #[test]
    #[should_panic(expected = "rebroadcast window")]
    fn tiny_window_rejected() {
        let p = RingParams {
            rebroadcast_window: Duration::from_nanos(1),
            ..RingParams::default()
        };
        p.validate();
    }

    #[test]
    #[should_panic(expected = "at least one IP")]
    fn empty_ip_pool_rejected() {
        RingParams::with_pools(1, 0).validate();
    }
}

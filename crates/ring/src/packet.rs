//! The packet formats of Figures 4.3, 4.4 and 4.5, with byte-accurate wire
//! encodings.
//!
//! The machine itself only needs the wire *sizes* (it keeps page contents in
//! the shared [`df_storage::PageStore`] rather than copying bytes into every
//! simulated message), so the size functions
//! [`instruction_packet_size`] / [`result_packet_size`] /
//! [`CONTROL_PACKET_SIZE`] are what the simulator charges against the rings.
//! The full structs with `encode`/`decode` exist so the formats are real,
//! testable artifacts — property tests round-trip them.
//!
//! Field widths (bytes): ids 2, lengths 4, flags/opcodes 1, relation names a
//! fixed 8 (1979 machines used short fixed names), tuple length & format 2.

use df_relalg::{Error, Result};

/// Fixed width of a relation-name field.
pub const RELATION_NAME_BYTES: usize = 8;

/// Header bytes of an instruction packet before the per-operand sections:
/// IPid(2) + packet length(4) + query id(2) + ICid sender(2) +
/// ICid destination(2) + flush flag(1) + opcode(1) +
/// result relation name(8) + result tuple length & format(2) +
/// number of source operands(1).
pub const INSTRUCTION_HEADER_BYTES: usize = 2 + 4 + 2 + 2 + 2 + 1 + 1 + RELATION_NAME_BYTES + 2 + 1;

/// Per-source-operand bytes excluding the data page itself:
/// relation name(8) + tuple length & format(2) + page length(4).
pub const OPERAND_HEADER_BYTES: usize = RELATION_NAME_BYTES + 2 + 4;

/// Result packet bytes excluding the data page:
/// ICid(2) + packet length(4) + relation name(8) + page length(4).
pub const RESULT_HEADER_BYTES: usize = 2 + 4 + RELATION_NAME_BYTES + 4;

/// Control packet size (Fig 4.5): ICid(2) + packet length(4) +
/// IPid of sender(2) + message(8: 4-byte code + 4-byte argument).
pub const CONTROL_PACKET_SIZE: usize = 2 + 4 + 2 + 8;

/// Wire size of an instruction packet carrying data pages of the given
/// sizes (Fig 4.3).
pub fn instruction_packet_size(page_bytes: &[usize]) -> usize {
    INSTRUCTION_HEADER_BYTES
        + page_bytes
            .iter()
            .map(|b| OPERAND_HEADER_BYTES + b)
            .sum::<usize>()
}

/// Wire size of a result packet carrying one data page (Fig 4.4).
pub fn result_packet_size(page_bytes: usize) -> usize {
    RESULT_HEADER_BYTES + page_bytes
}

/// The instruction opcodes of the machine (Fig 4.3's "instruction opcode").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Opcode {
    /// σ restrict.
    Restrict = 1,
    /// π project (streaming).
    Project = 2,
    /// ⋈ nested-loops join step.
    Join = 3,
    /// × cross product step.
    Cross = 4,
    /// ∪ union finalize.
    Union = 5,
    /// − difference finalize.
    Difference = 6,
    /// π-distinct finalize.
    ProjectDistinct = 7,
    /// Copy (append staging / bare scans).
    Copy = 8,
    /// Delete filter.
    Delete = 9,
}

impl Opcode {
    /// Decode from the wire byte.
    pub fn from_byte(b: u8) -> Result<Opcode> {
        Ok(match b {
            1 => Opcode::Restrict,
            2 => Opcode::Project,
            3 => Opcode::Join,
            4 => Opcode::Cross,
            5 => Opcode::Union,
            6 => Opcode::Difference,
            7 => Opcode::ProjectDistinct,
            8 => Opcode::Copy,
            9 => Opcode::Delete,
            _ => {
                return Err(Error::Corrupt {
                    detail: format!("unknown opcode byte {b}"),
                })
            }
        })
    }
}

/// One source-operand section of an instruction packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OperandSection {
    /// Relation name (≤ 8 bytes, NUL-padded on the wire).
    pub relation_name: String,
    /// "Tuple length & format".
    pub tuple_length: u16,
    /// The data page image.
    pub data_page: Vec<u8>,
}

/// Figure 4.3: the instruction packet an IC sends to an IP.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstructionPacket {
    /// Destination IP.
    pub ipid: u16,
    /// Query this instruction belongs to.
    pub query_id: u16,
    /// The controlling IC.
    pub icid_sender: u16,
    /// The IC controlling the subsequent operation (result destination).
    pub icid_destination: u16,
    /// "Flush-when-done": if set, the IP emits its buffered result tuples
    /// after executing this packet.
    pub flush_when_done: bool,
    /// The operation to apply.
    pub opcode: Opcode,
    /// Result relation name.
    pub result_relation: String,
    /// Result tuple length & format.
    pub result_tuple_length: u16,
    /// The source operands (1 or 2 in the paper's machine).
    pub operands: Vec<OperandSection>,
}

/// Figure 4.4: the result packet an IP sends to the destination IC.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResultPacket {
    /// Destination IC.
    pub icid: u16,
    /// Result relation name.
    pub relation_name: String,
    /// The data page image.
    pub data_page: Vec<u8>,
}

/// The message codes a control packet can carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlMessage {
    /// "Done": the IP finished its packet and is ready for more work.
    Done,
    /// Done + request for inner page `arg` (advance request, §4.2).
    RequestInner {
        /// Index of the requested inner page.
        index: u32,
    },
    /// Catch-up request for a page the IP *missed* while its memory was
    /// full (always honoured by the IC, never ignored).
    RequestMissed {
        /// Index of the missed inner page.
        index: u32,
    },
    /// Ready for another outer page.
    RequestOuter,
}

impl ControlMessage {
    fn code_arg(self) -> (u32, u32) {
        match self {
            ControlMessage::Done => (1, 0),
            ControlMessage::RequestInner { index } => (2, index),
            ControlMessage::RequestMissed { index } => (3, index),
            ControlMessage::RequestOuter => (4, 0),
        }
    }

    fn from_code_arg(code: u32, arg: u32) -> Result<ControlMessage> {
        Ok(match code {
            1 => ControlMessage::Done,
            2 => ControlMessage::RequestInner { index: arg },
            3 => ControlMessage::RequestMissed { index: arg },
            4 => ControlMessage::RequestOuter,
            _ => {
                return Err(Error::Corrupt {
                    detail: format!("unknown control message code {code}"),
                })
            }
        })
    }
}

/// Figure 4.5: the control packet an IP sends to its controlling IC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ControlPacket {
    /// Destination IC.
    pub icid: u16,
    /// Sending IP.
    pub ipid_sender: u16,
    /// The message.
    pub message: ControlMessage,
}

// ------------------------------------------------------------------ encode

fn put_name(out: &mut Vec<u8>, name: &str) -> Result<()> {
    let bytes = name.as_bytes();
    if bytes.len() > RELATION_NAME_BYTES || bytes.contains(&0) {
        return Err(Error::ValueOutOfRange {
            detail: format!("relation name `{name}` does not fit {RELATION_NAME_BYTES} bytes"),
        });
    }
    out.extend_from_slice(bytes);
    out.resize(out.len() + (RELATION_NAME_BYTES - bytes.len()), 0);
    Ok(())
}

fn get_name(bytes: &[u8]) -> Result<(String, usize)> {
    if bytes.len() < RELATION_NAME_BYTES {
        return Err(Error::Corrupt {
            detail: "truncated relation name".into(),
        });
    }
    let raw = &bytes[..RELATION_NAME_BYTES];
    let end = raw.iter().position(|&b| b == 0).unwrap_or(raw.len());
    let s = std::str::from_utf8(&raw[..end]).map_err(|_| Error::Corrupt {
        detail: "relation name is not UTF-8".into(),
    })?;
    Ok((s.to_owned(), RELATION_NAME_BYTES))
}

macro_rules! get_int {
    ($bytes:expr, $off:expr, $ty:ty) => {{
        const N: usize = std::mem::size_of::<$ty>();
        let off = $off;
        let slice = $bytes.get(off..off + N).ok_or(Error::Corrupt {
            detail: "truncated packet".into(),
        })?;
        let mut buf = [0u8; N];
        buf.copy_from_slice(slice);
        (<$ty>::from_be_bytes(buf), off + N)
    }};
}

impl InstructionPacket {
    /// Total wire size in bytes.
    pub fn wire_size(&self) -> usize {
        instruction_packet_size(
            &self
                .operands
                .iter()
                .map(|o| o.data_page.len())
                .collect::<Vec<_>>(),
        )
    }

    /// Encode to wire bytes.
    ///
    /// # Errors
    /// Fails if a relation name exceeds [`RELATION_NAME_BYTES`].
    pub fn encode(&self) -> Result<Vec<u8>> {
        let mut out = Vec::with_capacity(self.wire_size());
        out.extend_from_slice(&self.ipid.to_be_bytes());
        out.extend_from_slice(&(self.wire_size() as u32).to_be_bytes());
        out.extend_from_slice(&self.query_id.to_be_bytes());
        out.extend_from_slice(&self.icid_sender.to_be_bytes());
        out.extend_from_slice(&self.icid_destination.to_be_bytes());
        out.push(u8::from(self.flush_when_done));
        out.push(self.opcode as u8);
        put_name(&mut out, &self.result_relation)?;
        out.extend_from_slice(&self.result_tuple_length.to_be_bytes());
        out.push(
            u8::try_from(self.operands.len()).map_err(|_| Error::ValueOutOfRange {
                detail: "more than 255 operands".into(),
            })?,
        );
        for op in &self.operands {
            put_name(&mut out, &op.relation_name)?;
            out.extend_from_slice(&op.tuple_length.to_be_bytes());
            out.extend_from_slice(&(op.data_page.len() as u32).to_be_bytes());
            out.extend_from_slice(&op.data_page);
        }
        debug_assert_eq!(out.len(), self.wire_size());
        Ok(out)
    }

    /// Decode from wire bytes.
    pub fn decode(bytes: &[u8]) -> Result<InstructionPacket> {
        let (ipid, off) = get_int!(bytes, 0, u16);
        let (len, off) = get_int!(bytes, off, u32);
        if len as usize != bytes.len() {
            return Err(Error::Corrupt {
                detail: format!("packet length {len} vs actual {}", bytes.len()),
            });
        }
        let (query_id, off) = get_int!(bytes, off, u16);
        let (icid_sender, off) = get_int!(bytes, off, u16);
        let (icid_destination, off) = get_int!(bytes, off, u16);
        let (flush, off) = get_int!(bytes, off, u8);
        let (op, off) = get_int!(bytes, off, u8);
        let (result_relation, n) = get_name(&bytes[off..])?;
        let off = off + n;
        let (result_tuple_length, off) = get_int!(bytes, off, u16);
        let (n_ops, mut off) = get_int!(bytes, off, u8);
        let mut operands = Vec::with_capacity(n_ops as usize);
        for _ in 0..n_ops {
            let (relation_name, n) = get_name(&bytes[off..])?;
            off += n;
            let (tuple_length, o2) = get_int!(bytes, off, u16);
            let (page_len, o3) = get_int!(bytes, o2, u32);
            let end = o3 + page_len as usize;
            let data_page = bytes
                .get(o3..end)
                .ok_or(Error::Corrupt {
                    detail: "truncated data page".into(),
                })?
                .to_vec();
            off = end;
            operands.push(OperandSection {
                relation_name,
                tuple_length,
                data_page,
            });
        }
        Ok(InstructionPacket {
            ipid,
            query_id,
            icid_sender,
            icid_destination,
            flush_when_done: flush != 0,
            opcode: Opcode::from_byte(op)?,
            result_relation,
            result_tuple_length,
            operands,
        })
    }
}

impl ResultPacket {
    /// Total wire size in bytes.
    pub fn wire_size(&self) -> usize {
        result_packet_size(self.data_page.len())
    }

    /// Encode to wire bytes.
    ///
    /// # Errors
    /// Fails if the relation name exceeds [`RELATION_NAME_BYTES`].
    pub fn encode(&self) -> Result<Vec<u8>> {
        let mut out = Vec::with_capacity(self.wire_size());
        out.extend_from_slice(&self.icid.to_be_bytes());
        out.extend_from_slice(&(self.wire_size() as u32).to_be_bytes());
        put_name(&mut out, &self.relation_name)?;
        out.extend_from_slice(&(self.data_page.len() as u32).to_be_bytes());
        out.extend_from_slice(&self.data_page);
        debug_assert_eq!(out.len(), self.wire_size());
        Ok(out)
    }

    /// Decode from wire bytes.
    pub fn decode(bytes: &[u8]) -> Result<ResultPacket> {
        let (icid, off) = get_int!(bytes, 0, u16);
        let (len, off) = get_int!(bytes, off, u32);
        if len as usize != bytes.len() {
            return Err(Error::Corrupt {
                detail: format!("packet length {len} vs actual {}", bytes.len()),
            });
        }
        let (relation_name, n) = get_name(&bytes[off..])?;
        let off = off + n;
        let (page_len, off) = get_int!(bytes, off, u32);
        let data_page = bytes
            .get(off..off + page_len as usize)
            .ok_or(Error::Corrupt {
                detail: "truncated data page".into(),
            })?
            .to_vec();
        Ok(ResultPacket {
            icid,
            relation_name,
            data_page,
        })
    }
}

impl ControlPacket {
    /// Total wire size in bytes (fixed).
    pub fn wire_size(&self) -> usize {
        CONTROL_PACKET_SIZE
    }

    /// Encode to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(CONTROL_PACKET_SIZE);
        out.extend_from_slice(&self.icid.to_be_bytes());
        out.extend_from_slice(&(CONTROL_PACKET_SIZE as u32).to_be_bytes());
        out.extend_from_slice(&self.ipid_sender.to_be_bytes());
        let (code, arg) = self.message.code_arg();
        out.extend_from_slice(&code.to_be_bytes());
        out.extend_from_slice(&arg.to_be_bytes());
        out
    }

    /// Decode from wire bytes.
    pub fn decode(bytes: &[u8]) -> Result<ControlPacket> {
        let (icid, off) = get_int!(bytes, 0, u16);
        let (len, off) = get_int!(bytes, off, u32);
        if len as usize != CONTROL_PACKET_SIZE || bytes.len() != CONTROL_PACKET_SIZE {
            return Err(Error::Corrupt {
                detail: "control packet has a fixed size".into(),
            });
        }
        let (ipid_sender, off) = get_int!(bytes, off, u16);
        let (code, off) = get_int!(bytes, off, u32);
        let (arg, _off) = get_int!(bytes, off, u32);
        Ok(ControlPacket {
            icid,
            ipid_sender,
            message: ControlMessage::from_code_arg(code, arg)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_instruction() -> InstructionPacket {
        InstructionPacket {
            ipid: 7,
            query_id: 3,
            icid_sender: 1,
            icid_destination: 2,
            flush_when_done: true,
            opcode: Opcode::Join,
            result_relation: "tmp42".into(),
            result_tuple_length: 200,
            operands: vec![
                OperandSection {
                    relation_name: "emp".into(),
                    tuple_length: 100,
                    data_page: vec![0xAB; 500],
                },
                OperandSection {
                    relation_name: "dept".into(),
                    tuple_length: 100,
                    data_page: vec![0xCD; 300],
                },
            ],
        }
    }

    #[test]
    fn instruction_round_trip() {
        let p = sample_instruction();
        let bytes = p.encode().unwrap();
        assert_eq!(bytes.len(), p.wire_size());
        assert_eq!(InstructionPacket::decode(&bytes).unwrap(), p);
    }

    #[test]
    fn instruction_size_formula() {
        let p = sample_instruction();
        assert_eq!(
            p.wire_size(),
            INSTRUCTION_HEADER_BYTES + 2 * OPERAND_HEADER_BYTES + 800
        );
        assert_eq!(instruction_packet_size(&[500, 300]), p.wire_size());
    }

    #[test]
    fn result_round_trip() {
        let p = ResultPacket {
            icid: 5,
            relation_name: "out".into(),
            data_page: (0..=255).collect(),
        };
        let bytes = p.encode().unwrap();
        assert_eq!(bytes.len(), result_packet_size(256));
        assert_eq!(ResultPacket::decode(&bytes).unwrap(), p);
    }

    #[test]
    fn control_round_trip_all_messages() {
        for msg in [
            ControlMessage::Done,
            ControlMessage::RequestInner { index: 42 },
            ControlMessage::RequestMissed { index: 7 },
            ControlMessage::RequestOuter,
        ] {
            let p = ControlPacket {
                icid: 1,
                ipid_sender: 9,
                message: msg,
            };
            let bytes = p.encode();
            assert_eq!(bytes.len(), CONTROL_PACKET_SIZE);
            assert_eq!(ControlPacket::decode(&bytes).unwrap(), p);
        }
    }

    #[test]
    fn corrupt_packets_rejected() {
        let p = sample_instruction();
        let mut bytes = p.encode().unwrap();
        bytes.pop();
        assert!(InstructionPacket::decode(&bytes).is_err());
        assert!(ControlPacket::decode(&[1, 2, 3]).is_err());
        assert!(Opcode::from_byte(99).is_err());
    }

    #[test]
    fn long_relation_name_rejected() {
        let mut p = sample_instruction();
        p.result_relation = "waytoolongname".into();
        assert!(p.encode().is_err());
    }
}

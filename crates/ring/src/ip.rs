//! Instruction-processor logic.
//!
//! An IP executes the opcode of each instruction packet on the data pages
//! it carries (real kernels from `df-query::ops`), buffers result tuples,
//! emits full result pages as Fig-4.4 result packets, and — for joins —
//! runs the §4.2 protocol: hold the current outer page, join broadcast
//! inner pages as they arrive, track them in the IRC vector, ignore
//! broadcasts when local memory is full and catch up on the missed pages
//! once the last-inner-page indicator arrives, then request another outer.

use df_core::instr::{InstrId, Kernel};
use df_relalg::Page;
use df_sim::SimTime;
use df_storage::PageId;

use crate::machine::{Event, IrcEntry, Loc, Msg, Node, PacketKind, PendingWork, RingMachine};
use crate::packet::{result_packet_size, ControlMessage, CONTROL_PACKET_SIZE};

impl RingMachine {
    /// Track peak compute concurrency.
    fn note_busy(&mut self) {
        self.busy_ips += 1;
        let granted: usize = self.ic_instrs.iter().map(|st| st.granted.len()).sum();
        self.metrics.peak_busy_ips = self.metrics.peak_busy_ips.max(self.busy_ips as u64);
        self.metrics.peak_granted_ips = self.metrics.peak_granted_ips.max(granted as u64);
    }

    /// Handle a message addressed to IP `ip`.
    pub(crate) fn ip_handle(&mut self, now: SimTime, ip: usize, msg: Msg) {
        match msg {
            Msg::Packet { instr, kind } => {
                self.ips[ip].instr = Some(instr);
                match kind {
                    PacketKind::UnaryPage { page, flush } => {
                        self.ips[ip]
                            .pending_input
                            .push_back(PendingWork::Unary { page, flush });
                        self.ip_try_start(now, ip);
                    }
                    PacketKind::JoinOuter {
                        outer_idx,
                        page,
                        first_inner,
                    } => {
                        let st = &mut self.ips[ip];
                        debug_assert!(st.outer.is_none(), "IP already holds an outer page");
                        st.outer = Some((outer_idx, page));
                        st.irc.clear();
                        st.joined_count = 0;
                        st.catchup_in_flight = None;
                        st.advance_in_flight = false;
                        st.inner_queue.clear();
                        if let Some((idx, ipage)) = first_inner {
                            self.ip_enqueue_inner(ip, idx, ipage);
                        }
                        self.ip_try_start(now, ip);
                    }
                    PacketKind::WholeRelation { pages } => {
                        self.ips[ip]
                            .pending_input
                            .push_back(PendingWork::Whole { pages });
                        self.ips[ip].flush_pending = true;
                        self.ip_try_start(now, ip);
                    }
                    PacketKind::FlushNow => {
                        self.ips[ip].flush_pending = true;
                        self.ip_try_start(now, ip);
                    }
                }
            }
            Msg::BroadcastInner { instr, idx, page } => {
                self.ip_on_broadcast(now, ip, instr, idx, page);
            }
            Msg::InnerComplete { instr, total } => {
                if self.ips[ip].instr == Some(instr) {
                    self.ips[ip].inner_total = Some(total);
                    self.ips[ip].advance_in_flight = false;
                    self.ip_try_start(now, ip);
                }
            }
            other => panic!("IP received unexpected message {other:?}"),
        }
    }

    /// A broadcast inner page arrived (the IP filters by query id, §4.2).
    fn ip_on_broadcast(
        &mut self,
        now: SimTime,
        ip: usize,
        instr: InstrId,
        idx: usize,
        page: PageId,
    ) {
        let st = &mut self.ips[ip];
        if st.instr != Some(instr) || st.outer.is_none() {
            return; // not participating (query-id filter)
        }
        // Duplicate suppression: already joined, queued, or being joined.
        if idx < st.irc.len() && st.irc[idx].joined {
            return;
        }
        if st.current_inner == Some(idx) || st.inner_queue.iter().any(|&(i, _)| i == idx) {
            return;
        }
        let was_missed = idx < st.irc.len() && st.irc[idx].missed;
        // Local memory: the held outer + queued inners + the inner being
        // joined right now.
        let held = 1 + st.inner_queue.len() + usize::from(st.current_inner.is_some());
        if held + 1 > self.params.ip_memory_pages {
            // "If the IP does not have room in its local memory for the
            // broadcast page, it will ignore the packet." — noted in the
            // IRC vector for the catch-up phase.
            Self::ensure_irc(&mut st.irc, idx);
            if !st.irc[idx].missed {
                st.irc[idx].missed = true;
                self.metrics.pages_missed += 1;
            }
            // The page was seen on the ring: the advance request (if any)
            // is satisfied; the catch-up phase will fetch it later.
            st.advance_in_flight = false;
            return;
        }
        if was_missed && st.catchup_in_flight == Some(idx) {
            st.catchup_in_flight = None;
        }
        self.ip_enqueue_inner(ip, idx, page);
        self.ip_try_start(now, ip);
    }

    /// Queue an inner page for joining.
    fn ip_enqueue_inner(&mut self, ip: usize, idx: usize, page: PageId) {
        let st = &mut self.ips[ip];
        Self::ensure_irc(&mut st.irc, idx);
        st.irc[idx].missed = false;
        st.inner_queue.push_back((idx, page));
        st.advance_in_flight = false;
    }

    fn ensure_irc(irc: &mut Vec<IrcEntry>, idx: usize) {
        if irc.len() <= idx {
            irc.resize(idx + 1, IrcEntry::default());
        }
    }

    /// Start the next computation, or advance the join protocol, or flush.
    fn ip_try_start(&mut self, now: SimTime, ip: usize) {
        if self.ips[ip].busy {
            return;
        }
        // 1. Explicit pending work (unary pages, whole-relation finalizers).
        if let Some(work) = self.ips[ip].pending_input.pop_front() {
            match work {
                PendingWork::Unary { page, flush } => {
                    self.ips[ip].flush_pending |= flush;
                    let instr = self.ips[ip].instr.expect("working IP has an instruction");
                    let kernel = self.program.instructions[instr].kernel.clone();
                    let out_schema = self.program.instructions[instr].output_schema.clone();
                    let results = kernel.run_unit_raw(&[self.store.get(page)], &out_schema);
                    // Kernel-aware service time: a fused span charges the
                    // sum of its step costs (n per step); plain unary
                    // kernels charge n.
                    let ops = kernel.tuple_ops(&[self.store.get(page).len()]);
                    let dur = self.compute_time_for(&[page], ops);
                    self.ips[ip].current_results = Some(results);
                    self.ips[ip].busy = true;
                    self.note_busy();
                    self.metrics.ip_busy += dur;
                    self.queue.schedule(now + dur, Event::IpCompute { ip });
                }
                PendingWork::Whole { pages } => {
                    let instr = self.ips[ip].instr.expect("working IP has an instruction");
                    let kernel = self.program.instructions[instr].kernel.clone();
                    let out_schema = self.program.instructions[instr].output_schema.clone();
                    let inputs: Vec<Vec<&Page>> = pages
                        .iter()
                        .map(|slot| slot.iter().map(|&p| self.store.get(p)).collect())
                        .collect();
                    let results = kernel.run_final_raw(&inputs, &out_schema);
                    let flat: Vec<PageId> = pages.iter().flatten().copied().collect();
                    let ops: usize = flat.iter().map(|&p| self.store.get(p).len()).sum();
                    let dur = self.compute_time_for(&flat, ops);
                    self.ips[ip].current_results = Some(results);
                    self.ips[ip].busy = true;
                    self.note_busy();
                    self.metrics.ip_busy += dur;
                    self.queue.schedule(now + dur, Event::IpCompute { ip });
                }
            }
            return;
        }
        // 2. Join work from the inner queue.
        if self.ips[ip].outer.is_some() {
            if let Some((idx, ipage)) = self.ips[ip].inner_queue.pop_front() {
                let (_, opage) = self.ips[ip].outer.expect("checked");
                let instr = self.ips[ip].instr.expect("working IP has an instruction");
                let kernel = self.program.instructions[instr].kernel.clone();
                debug_assert!(matches!(kernel, Kernel::JoinPair(..) | Kernel::CrossPair));
                let out_schema = self.program.instructions[instr].output_schema.clone();
                let results = kernel
                    .run_unit_raw(&[self.store.get(opage), self.store.get(ipage)], &out_schema);
                // Kernel-aware service time: a hash-path equi-join charges
                // n + m (index build + probes), nested loops and cross
                // products charge the n·m sweep.
                let ops =
                    kernel.tuple_ops(&[self.store.get(opage).len(), self.store.get(ipage).len()]);
                let dur = self.compute_time_for(&[opage, ipage], ops);
                self.ips[ip].current_inner = Some(idx);
                self.ips[ip].current_results = Some(results);
                self.ips[ip].busy = true;
                self.note_busy();
                self.metrics.ip_busy += dur;
                self.queue.schedule(now + dur, Event::IpCompute { ip });
                return;
            }
            // Idle with an outer: drive the protocol forward.
            self.ip_join_advance(now, ip);
            return;
        }
        // 3. Nothing to compute: honour a pending flush.
        if self.ips[ip].flush_pending {
            self.ip_flush(now, ip);
        }
    }

    /// A computation finished: buffer results, update the IRC, continue.
    pub(crate) fn ip_compute_done(&mut self, now: SimTime, ip: usize) {
        self.ips[ip].busy = false;
        self.busy_ips -= 1;
        let mut results = self.ips[ip]
            .current_results
            .take()
            .expect("computing IP has a result batch");
        let instr = self.ips[ip].instr.expect("computing IP has an instruction");
        let schema = self.program.instructions[instr].output_schema.clone();
        let page_size = self.params.page_size;
        // Drain result images into the output buffer page; emit full pages.
        // Pure byte copies — nothing is decoded on the way out.
        while !results.is_empty() {
            let buf = self.ips[ip].out_buffer.get_or_insert_with(|| {
                Page::new(schema.clone(), page_size).expect("output page size validated")
            });
            results.drain_into(buf);
            if buf.is_full() {
                let full = self.ips[ip].out_buffer.take().expect("just filled");
                self.ip_emit_page(now, ip, full);
            }
        }
        match self.ips[ip].current_inner.take() {
            Some(idx) => {
                // Join step: update the IRC and keep the protocol moving.
                let st = &mut self.ips[ip];
                Self::ensure_irc(&mut st.irc, idx);
                if !st.irc[idx].joined {
                    st.irc[idx].joined = true;
                    st.joined_count += 1;
                }
                self.ip_try_start(now, ip);
            }
            None => {
                // Unary / whole-relation packet: "the IP sends a control
                // packet to the IC which sent the instruction packet …
                // an indication that the IP has finished the task assigned
                // and is ready for further work." (§4.2)
                if self.ips[ip].flush_pending {
                    self.ip_flush(now, ip);
                } else {
                    self.ip_send_control(now, ip, instr, ControlMessage::Done);
                }
            }
        }
    }

    /// The smallest inner index this IP still needs: not joined, not
    /// missed (those go through catch-up), not queued, not being joined.
    /// Indexes at or beyond `irc.len()` have never been seen at all.
    fn ip_next_needed(&self, ip: usize) -> usize {
        let st = &self.ips[ip];
        for idx in 0..st.irc.len() {
            let e = st.irc[idx];
            if e.joined || e.missed {
                continue;
            }
            if st.current_inner == Some(idx) || st.inner_queue.iter().any(|&(i, _)| i == idx) {
                continue;
            }
            return idx;
        }
        st.irc.len()
    }

    /// Idle join IP with an outer page: request what it needs next.
    fn ip_join_advance(&mut self, now: SimTime, ip: usize) {
        let instr = self.ips[ip].instr.expect("join IP has an instruction");
        if self.ips[ip].catchup_in_flight.is_some() {
            return; // waiting for a catch-up page
        }
        if let Some(total) = self.ips[ip].inner_total {
            if self.ips[ip].joined_count >= total {
                // "When the IP has joined the current page of the outer
                // relation with all the pages of the inner relation, it will
                // first zero its IRC vector and then … request another page
                // of the outer relation."
                let st = &mut self.ips[ip];
                st.outer = None;
                st.irc.clear();
                st.joined_count = 0;
                self.ip_send_control(now, ip, instr, ControlMessage::RequestOuter);
                return;
            }
            // Catch-up phase: request the first missed, unjoined page.
            let missed = self.ips[ip].irc.iter().position(|e| e.missed && !e.joined);
            if let Some(idx) = missed {
                self.ips[ip].catchup_in_flight = Some(idx);
                self.ip_send_control(
                    now,
                    ip,
                    instr,
                    ControlMessage::RequestMissed { index: idx as u32 },
                );
                return;
            }
            let need = self.ip_next_needed(ip);
            if need < total && !self.ips[ip].advance_in_flight {
                self.ips[ip].advance_in_flight = true;
                self.ip_send_control(
                    now,
                    ip,
                    instr,
                    ControlMessage::RequestInner { index: need as u32 },
                );
            }
            // Otherwise the remaining pages are queued or in flight.
        } else if !self.ips[ip].advance_in_flight {
            let need = self.ip_next_needed(ip);
            self.ips[ip].advance_in_flight = true;
            self.ip_send_control(
                now,
                ip,
                instr,
                ControlMessage::RequestInner { index: need as u32 },
            );
        }
    }

    /// Emit the partial output page (if any) and report Done.
    fn ip_flush(&mut self, now: SimTime, ip: usize) {
        self.ips[ip].flush_pending = false;
        if let Some(partial) = self.ips[ip].out_buffer.take() {
            if !partial.is_empty() {
                self.ip_emit_page(now, ip, partial);
            }
        }
        let instr = self.ips[ip].instr.expect("flushing IP has an instruction");
        self.ip_send_control(now, ip, instr, ControlMessage::Done);
    }

    /// Ship one output page as a result packet (Fig 4.4) — or, with the §5
    /// direct-routing extension, park full pages at this IP and send only a
    /// control-sized notice.
    fn ip_emit_page(&mut self, now: SimTime, ip: usize, page: Page) {
        let full = page.is_full();
        let bytes = page.wire_bytes();
        let id = self.store.put(page);
        let instr = self.ips[ip].instr.expect("emitting IP has an instruction");
        let dest_ic = match self.program.instructions[instr].parent {
            Some((parent, _)) => self.ic_instrs[parent].ic,
            None => self.ic_instrs[instr].ic,
        };
        self.metrics.result_packets += 1;
        let has_parent = self.program.instructions[instr].parent.is_some();
        if self.params.direct_routing && has_parent && full {
            // §5: "route some of the data pages … directly from one IP to
            // another without first sending the page to an IC". The page
            // body stays here; the IC gets a control-sized availability
            // notice and the body travels IP→IP at dispatch time.
            self.loc.insert(id, Loc::AtIp(ip));
            self.metrics.direct_routed_pages += 1;
            self.send_outer(
                now,
                Node::Ip(ip),
                Node::Ic(dest_ic),
                CONTROL_PACKET_SIZE,
                Msg::Result {
                    from_ip: ip,
                    producer: instr,
                    page: id,
                },
            );
        } else {
            self.send_outer(
                now,
                Node::Ip(ip),
                Node::Ic(dest_ic),
                result_packet_size(bytes),
                Msg::Result {
                    from_ip: ip,
                    producer: instr,
                    page: id,
                },
            );
        }
    }

    /// Send a Fig-4.5 control packet to the controlling IC.
    fn ip_send_control(
        &mut self,
        now: SimTime,
        ip: usize,
        instr: InstrId,
        message: ControlMessage,
    ) {
        let ic = self.ic_instrs[instr].ic;
        self.metrics.control_packets += 1;
        self.send_outer(
            now,
            Node::Ip(ip),
            Node::Ic(ic),
            CONTROL_PACKET_SIZE,
            Msg::Control {
                from_ip: ip,
                instr,
                message,
            },
        );
    }
}

//! The ring machine: state, event loop, and the storage hierarchy glue.
//!
//! The controller logic lives in sibling modules operating on this state:
//! [`crate::mc`] (query admission, IP-pool arbitration), [`crate::ic`]
//! (instruction control: §4.2 protocol), [`crate::ip`] (instruction
//! processors: kernels, IRC vectors, output buffering).
//!
//! ## Node layout
//!
//! * inner ring: MC at station 0, IC *i* at station `1 + i`;
//! * outer ring: IC *i* at station `i`, IP *j* at station `ics + j`.
//!
//! ## Page locations
//!
//! Every page's contents live in the shared [`PageStore`]; the machine
//! tracks one *location* per page ([`Loc`]) and charges device/ring time as
//! pages move: mass storage ⇄ disk cache ⇄ IC local memory → (outer ring) →
//! IP memories. Join operand pages stay in the IC hierarchy until the
//! instruction completes so that missed-broadcast catch-up requests can be
//! served; single-use operand pages of streaming operators are reclaimed as
//! soon as they are shipped.

use std::collections::{HashMap, VecDeque};

use df_core::instr::{compile_with, InstrId, Program, UpdateSpec};
use df_core::CostModel;
use df_obs::Path as ObsPath;
use df_query::QueryTree;
use df_relalg::{Catalog, Page, Relation, Result, TupleBuf};
use df_sim::{Duration, EventQueue, SimTime};
use df_storage::{DiskCache, LocalMemory, MassStorage, PageId, PageStore, PageTable};

use crate::metrics::RingMetrics;
use crate::params::RingParams;
use crate::ring::Ring;
use df_core::{LockRequest, LockTable};

/// Approximate wire size of inner-ring control messages (assignment,
/// request, grant, release, done). The paper: "the messages required for
/// such activities are small and limited in number".
pub(crate) const INNER_MSG_BYTES: usize = 64;

/// Where a page currently resides.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Loc {
    /// On mass storage.
    OnDisk,
    /// In the disk cache (owned by an IC segment).
    Cached,
    /// In an IC's local memory.
    IcLocal(usize),
    /// Held at a producing IP (direct-routing extension, §5).
    AtIp(usize),
}

/// A message in flight (the machine-internal form of the wire packets; the
/// wire sizes of `crate::packet` are what gets charged to the rings).
#[derive(Debug, Clone)]
pub(crate) enum Msg {
    // ---- inner ring ----
    /// MC → IC: take control of this instruction.
    AssignInstr { instr: InstrId },
    /// IC → MC: request `want` more IPs for `instr`.
    IpRequest {
        ic: usize,
        instr: InstrId,
        want: usize,
    },
    /// MC → IC: one IP granted to `instr`.
    IpGrant { instr: InstrId, ip: usize },
    /// IC → MC: `ip` is free again.
    IpRelease { ip: usize },
    /// IC → MC: `instr` has completed.
    InstrDone { instr: InstrId },
    // ---- outer ring ----
    /// IC → IP: an instruction packet (Fig 4.3).
    Packet { instr: InstrId, kind: PacketKind },
    /// IC → all IPs: broadcast of inner page `idx` (join protocol).
    BroadcastInner {
        instr: InstrId,
        idx: usize,
        page: PageId,
    },
    /// IC → all IPs of `instr`: the inner operand is complete with `total`
    /// pages ("a packet … which indicates that this is the last page of the
    /// inner relation", §4.2).
    InnerComplete { instr: InstrId, total: usize },
    /// IP → IC: a result packet (Fig 4.4) carrying one output page.
    Result {
        from_ip: usize,
        producer: InstrId,
        page: PageId,
    },
    /// IP → IC: a control packet (Fig 4.5).
    Control {
        from_ip: usize,
        instr: InstrId,
        message: crate::packet::ControlMessage,
    },
    /// IC → IC: the producer feeding `(instr, slot)` has terminated.
    StreamComplete { instr: InstrId, slot: usize },
}

/// The payload of an instruction packet.
#[derive(Debug, Clone)]
pub(crate) enum PacketKind {
    /// One source page for a streaming unary kernel. `flush` is the
    /// "flush-when-done" flag of Fig 4.3.
    UnaryPage { page: PageId, flush: bool },
    /// A new outer page for a join/cross sweep, optionally with the first
    /// inner page ("the two operands in the packet", §4.2).
    JoinOuter {
        outer_idx: usize,
        page: PageId,
        first_inner: Option<(usize, PageId)>,
    },
    /// All input pages of a whole-relation (blocking) kernel.
    WholeRelation { pages: Vec<Vec<PageId>> },
    /// Zero-operand packet whose only effect is flush-when-done.
    FlushNow,
}

/// Simulation events.
#[derive(Debug)]
pub(crate) enum Event {
    /// Message delivered at its destination after ring transit.
    Deliver { to: Node, msg: Msg },
    /// An IP finished its current computation.
    IpCompute { ip: usize },
    /// A user submitted `query` to the MC (multi-user operation; paper
    /// requirement 1).
    QueryArrival { query: usize },
}

/// A station on one of the rings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Node {
    /// The master controller (inner ring only).
    Mc,
    /// Instruction controller `i`.
    Ic(usize),
    /// Instruction processor `j`.
    Ip(usize),
}

// ------------------------------------------------------------------ states

/// Master-controller state.
#[derive(Debug, Default)]
pub(crate) struct McState {
    pub locks: LockTable,
    /// Queries waiting for admission, in arrival order.
    pub waiting: VecDeque<usize>,
    /// Lock set per query.
    pub lock_requests: Vec<LockRequest>,
    /// Remaining unfinished instructions per query.
    pub remaining: Vec<usize>,
    /// Free IP pool.
    pub free_ips: VecDeque<usize>,
    /// Outstanding grant requests `(ic, instr, remaining)`. The grant loop
    /// serves ONE IP per entry and rotates, so processors are "distributed
    /// across all nodes in the query tree" (§4.1) instead of the earliest
    /// big requester monopolizing the pool.
    pub requests: VecDeque<(usize, InstrId, usize)>,
}

/// Per-instruction control state at its IC.
#[derive(Debug)]
pub(crate) struct IcInstr {
    /// The controlling IC.
    pub ic: usize,
    /// Assigned by the MC (query admitted); inactive instructions neither
    /// request IPs nor dispatch.
    pub active: bool,
    /// Operand page tables (pages registered post-compaction).
    pub operands: Vec<PageTable>,
    /// Compaction buffer per operand slot (partial result pages are merged
    /// into full pages, §4.2).
    pub compaction: Vec<Option<Page>>,
    /// IPs granted to this instruction.
    pub granted: Vec<usize>,
    /// IPs granted but currently without work.
    pub parked: Vec<usize>,
    /// Grant requests sent to the MC not yet satisfied.
    pub outstanding: usize,
    /// Streaming unary: cursor handled by `operands[0].take_next()`.
    /// Join: next outer index to hand out.
    pub outer_next: usize,
    /// Join: outer pages fully processed.
    pub outers_done: usize,
    /// Join: per inner index, when it was last broadcast.
    pub last_broadcast: Vec<Option<SimTime>>,
    /// Join: when each IP was handed its current outer page. A request may
    /// only be window-suppressed if the prior broadcast happened *after*
    /// this instant — earlier broadcasts passed while the IP held no outer
    /// and were legitimately ignored without an IRC record.
    pub outer_assigned_at: HashMap<usize, SimTime>,
    /// Join: advance requests for pages not yet produced: (ip, idx).
    pub deferred_requests: Vec<(usize, usize)>,
    /// Join: whether `InnerComplete` has been broadcast.
    pub inner_complete_sent: bool,
    /// Whole-relation kernels: the single packet has been sent.
    pub final_sent: bool,
    /// IPs told to flush and not yet released.
    pub flushing: Vec<usize>,
    /// Completion announced to MC / parent.
    pub done: bool,
    /// When the first instruction packet was dispatched.
    pub first_packet: Option<SimTime>,
    /// When the instruction completed.
    pub completed: Option<SimTime>,
}

/// Per-IP state.
#[derive(Debug)]
pub(crate) struct IpState {
    /// Instruction currently assigned (None = in the MC free pool).
    pub instr: Option<InstrId>,
    /// Join: the held outer page and its index.
    pub outer: Option<(usize, PageId)>,
    /// Join: queued inner pages (bounded by `ip_memory_pages - 1`).
    pub inner_queue: VecDeque<(usize, PageId)>,
    /// Join IRC vector: per inner index seen so far, joined / missed flags.
    pub irc: Vec<IrcEntry>,
    /// Join: inner pages joined with the current outer.
    pub joined_count: usize,
    /// An advance request is in flight (avoid duplicates).
    pub advance_in_flight: bool,
    /// Join: total inner pages, once announced.
    pub inner_total: Option<usize>,
    /// A catch-up request currently in flight (avoid duplicates).
    pub catchup_in_flight: Option<usize>,
    /// Unary/whole work waiting to compute: (pages, flush_after).
    pub pending_input: VecDeque<PendingWork>,
    /// True while a computation is scheduled.
    pub busy: bool,
    /// Result batch (encoded images) computed by the in-flight computation.
    pub current_results: Option<TupleBuf>,
    /// Join bookkeeping for the in-flight computation: inner idx joined.
    pub current_inner: Option<usize>,
    /// Output buffer page.
    pub out_buffer: Option<Page>,
    /// Flush requested (emit buffered output when current work drains).
    pub flush_pending: bool,
}

/// IRC vector entry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct IrcEntry {
    /// Joined with the current outer page.
    pub joined: bool,
    /// Broadcast missed (memory full); needs catch-up.
    pub missed: bool,
}

/// Work waiting at an IP (join inner pages use the dedicated
/// `inner_queue` so the memory-capacity rule can see them).
#[derive(Debug)]
pub(crate) enum PendingWork {
    /// A unary page (restrict/project/copy/delete-filter).
    Unary { page: PageId, flush: bool },
    /// A whole-relation finalizer.
    Whole { pages: Vec<Vec<PageId>> },
}

// ----------------------------------------------------------------- machine

/// The §4 ring machine.
pub struct RingMachine {
    pub(crate) params: RingParams,
    pub(crate) program: Program,
    pub(crate) queue: EventQueue<Event>,

    pub(crate) store: PageStore,
    pub(crate) disk: MassStorage,
    pub(crate) cache: DiskCache,
    pub(crate) ic_memory: Vec<LocalMemory>,
    pub(crate) loc: HashMap<PageId, Loc>,

    pub(crate) inner_ring: Ring,
    pub(crate) outer_ring: Ring,

    pub(crate) mc: McState,
    pub(crate) ic_instrs: Vec<IcInstr>,
    pub(crate) ips: Vec<IpState>,

    pub(crate) metrics: RingMetrics,
    /// When each query is submitted (all zero for a plain batch).
    pub(crate) arrivals: Vec<SimTime>,
    /// IPs currently computing (for the peak-concurrency metric).
    pub(crate) busy_ips: usize,
    pub(crate) query_results: Vec<Vec<PageId>>,
    pub(crate) query_done_at: Vec<Option<SimTime>>,
}

/// Output of [`run_ring_queries`].
#[derive(Debug, Clone)]
pub struct RingRunOutput {
    /// One result relation per query.
    pub results: Vec<Relation>,
    /// Whole-run metrics.
    pub metrics: RingMetrics,
    /// Deferred updates.
    updates: Vec<Option<UpdateSpec>>,
}

impl RingRunOutput {
    /// Apply the batch's append/delete updates to `db`.
    pub fn apply_updates(&self, db: &mut Catalog) -> Result<()> {
        df_core::Machine::apply_updates(db, &self.updates, &self.results)
    }
}

/// Run a batch of queries on the ring machine, all submitted at t = 0
/// (the paper's benchmark form).
///
/// # Errors
/// Propagates query validation errors.
pub fn run_ring_queries(
    db: &Catalog,
    queries: &[QueryTree],
    params: &RingParams,
) -> Result<RingRunOutput> {
    let arrivals = vec![SimTime::ZERO; queries.len()];
    run_ring_queries_at(db, queries, &arrivals, params)
}

/// Run queries submitted at individual arrival times — multi-user
/// operation (requirement 1, §4.0): each query reaches the MC's admission
/// queue at its own instant, contends for locks and the IP pool against
/// whatever is already running, and its response time is measured from its
/// arrival.
///
/// # Errors
/// Propagates validation errors; panics if `arrivals.len() !=
/// queries.len()`.
pub fn run_ring_queries_at(
    db: &Catalog,
    queries: &[QueryTree],
    arrivals: &[SimTime],
    params: &RingParams,
) -> Result<RingRunOutput> {
    assert_eq!(arrivals.len(), queries.len(), "one arrival time per query");
    let mut machine = RingMachine::new(db, queries, params.clone())?;
    machine.arrivals = arrivals.to_vec();
    let updates = machine.program.updates.clone();
    let (results, metrics) = machine.run();
    Ok(RingRunOutput {
        results,
        metrics,
        updates,
    })
}

impl RingMachine {
    /// Compile and assemble the machine.
    ///
    /// # Errors
    /// Propagates validation errors.
    pub fn new(db: &Catalog, queries: &[QueryTree], params: RingParams) -> Result<RingMachine> {
        params.validate();
        let program = compile_with(db, queries, params.join_algo, params.transfer)?;
        // Every instruction's output page must hold at least one tuple.
        for instr in &program.instructions {
            Page::new(instr.output_schema.clone(), params.page_size)?;
        }

        let mut store = PageStore::new();
        let mut disk = MassStorage::new(params.disk.clone());
        let mut loc = HashMap::new();
        let mut base_pages: HashMap<String, Vec<PageId>> = HashMap::new();
        for name in &program.base_relations {
            let rel = db.require(name)?;
            let ids = store.load_relation(rel);
            for &id in &ids {
                disk.preload(id);
                loc.insert(id, Loc::OnDisk);
            }
            base_pages.insert(name.clone(), ids);
        }

        let mut cache = DiskCache::new(params.cache.clone());
        // Segment the cache equally across the ICs (the paper suggests
        // IP-proportional shares; equal shares are the degenerate case for
        // a uniform pool and keep the arithmetic transparent).
        let per_ic = (params.cache.frames / params.ics).max(1);
        for ic in 0..params.ics {
            cache.set_quota(ic, per_ic);
        }

        let n_queries = program.roots.len();
        let ics = params.ics;

        // Per-instruction IC state, with source operands pre-registered.
        let mut ic_instrs: Vec<IcInstr> = Vec::with_capacity(program.instructions.len());
        for instr in &program.instructions {
            let mut operands = Vec::new();
            for op in &instr.operands {
                match &op.source {
                    Some(name) => operands.push(PageTable::complete_with(
                        op.schema.clone(),
                        base_pages[name].clone(),
                    )),
                    None => operands.push(PageTable::new(op.schema.clone())),
                }
            }
            ic_instrs.push(IcInstr {
                ic: instr.id % ics,
                active: false,
                compaction: vec![None; operands.len()],
                operands,
                granted: Vec::new(),
                parked: Vec::new(),
                outstanding: 0,
                outer_next: 0,
                outers_done: 0,
                last_broadcast: Vec::new(),
                outer_assigned_at: HashMap::new(),
                deferred_requests: Vec::new(),
                inner_complete_sent: false,
                final_sent: false,
                flushing: Vec::new(),
                done: false,
                first_packet: None,
                completed: None,
            });
        }

        let mc = McState {
            locks: LockTable::new(),
            waiting: VecDeque::new(), // filled by mc_bootstrap per arrival

            lock_requests: queries
                .iter()
                .map(|q| LockRequest::new(q.referenced_relations(), q.written_relations()))
                .collect(),
            remaining: {
                let mut v = vec![0usize; n_queries];
                for i in &program.instructions {
                    v[i.query] += 1;
                }
                v
            },
            free_ips: (0..params.ips).collect(),
            requests: VecDeque::new(),
        };

        let ips = (0..params.ips)
            .map(|_| IpState {
                instr: None,
                outer: None,
                inner_queue: VecDeque::new(),
                irc: Vec::new(),
                joined_count: 0,
                advance_in_flight: false,
                inner_total: None,
                catchup_in_flight: None,
                pending_input: VecDeque::new(),
                busy: false,
                current_results: None,
                current_inner: None,
                out_buffer: None,
                flush_pending: false,
            })
            .collect();

        let metrics = RingMetrics {
            ips: params.ips,
            ics: params.ics,
            ..RingMetrics::default()
        };

        Ok(RingMachine {
            inner_ring: Ring::new(
                "inner",
                1 + params.ics,
                params.inner_ring_bps,
                params.hop_latency,
            ),
            outer_ring: Ring::new(
                "outer",
                params.ics + params.ips,
                params.outer_ring_bps,
                params.hop_latency,
            ),
            ic_memory: (0..params.ics)
                .map(|_| LocalMemory::new(params.ic_memory_pages))
                .collect(),
            queue: EventQueue::new(),
            store,
            disk,
            cache,
            loc,
            mc,
            ic_instrs,
            ips,
            metrics,
            arrivals: vec![SimTime::ZERO; n_queries],
            busy_ips: 0,
            query_results: vec![Vec::new(); n_queries],
            query_done_at: vec![None; n_queries],
            params,
            program,
        })
    }

    /// The IP cost model.
    pub(crate) fn cost(&self) -> &CostModel {
        &self.params.cost
    }

    // --------------------------------------------------------- ring sends

    /// Record `bytes` moving on a byte path at simulated time `now`: feeds
    /// the matching per-interval series on the metrics and, when a tracer
    /// is installed, its exact per-path counters. Every ring/cache/disk
    /// transfer flows through here, so series and `ByteCounter` totals
    /// agree by construction.
    fn observe(&mut self, now: SimTime, path: ObsPath, bytes: usize) {
        let t = now.as_nanos();
        let series = match path {
            ObsPath::InnerRing => &mut self.metrics.inner_ring_series,
            ObsPath::OuterRing => &mut self.metrics.outer_ring_series,
            ObsPath::DiskRead | ObsPath::DiskWrite => &mut self.metrics.disk_series,
            ObsPath::CacheIn | ObsPath::CacheOut => &mut self.metrics.cache_series,
            _ => return,
        };
        series.record(t, bytes as u64);
        if let Some(tr) = self.params.trace.as_deref() {
            tr.transfer_at(t, path, u32::MAX, bytes as u64);
        }
    }

    /// Station of a node on the inner ring.
    fn inner_station(node: Node) -> usize {
        match node {
            Node::Mc => 0,
            Node::Ic(i) => 1 + i,
            Node::Ip(_) => panic!("IPs are not on the inner ring"),
        }
    }

    /// Station of a node on the outer ring.
    fn outer_station(&self, node: Node) -> usize {
        match node {
            Node::Ic(i) => i,
            Node::Ip(j) => self.params.ics + j,
            Node::Mc => panic!("the MC is not on the outer ring"),
        }
    }

    /// Send a control message on the inner ring.
    pub(crate) fn send_inner(&mut self, now: SimTime, from: Node, to: Node, msg: Msg) {
        self.observe(now, ObsPath::InnerRing, INNER_MSG_BYTES);
        let t = self.inner_ring.send(
            now,
            Self::inner_station(from),
            Self::inner_station(to),
            INNER_MSG_BYTES,
        );
        self.queue.schedule(t, Event::Deliver { to, msg });
    }

    /// Send a message of `bytes` on the outer ring.
    pub(crate) fn send_outer(
        &mut self,
        now: SimTime,
        from: Node,
        to: Node,
        bytes: usize,
        msg: Msg,
    ) {
        self.observe(now, ObsPath::OuterRing, bytes);
        let t = self
            .outer_ring
            .send(now, self.outer_station(from), self.outer_station(to), bytes);
        self.queue.schedule(t, Event::Deliver { to, msg });
    }

    /// Broadcast on the outer ring: one transmission, delivered to every IP
    /// executing the instruction (they filter by query id per §4.2).
    pub(crate) fn broadcast_outer(
        &mut self,
        now: SimTime,
        from: Node,
        bytes: usize,
        targets: &[usize],
        make_msg: impl Fn() -> Msg,
    ) {
        self.observe(now, ObsPath::OuterRing, bytes);
        let t = self
            .outer_ring
            .broadcast(now, self.outer_station(from), bytes);
        for &ip in targets {
            self.queue.schedule(
                t,
                Event::Deliver {
                    to: Node::Ip(ip),
                    msg: make_msg(),
                },
            );
        }
    }

    // ----------------------------------------------------------- storage

    /// Store an arriving result page in an IC's local memory, spilling to
    /// the IC's cache segment and onward to disk as needed. Returns when
    /// the page is settled.
    pub(crate) fn ic_store_page(&mut self, now: SimTime, ic: usize, page: PageId) -> SimTime {
        let bytes = self.store.wire_bytes(page);
        let spilled = self.ic_memory[ic].insert(page, bytes, |p| self.store.get(p).wire_bytes());
        self.loc.insert(page, Loc::IcLocal(ic));
        let mut settled = now;
        for victim in spilled {
            let vbytes = self.store.wire_bytes(victim);
            let (_, done, evicted) = self.cache.insert(now, ic, victim, vbytes);
            self.metrics.cache_in.record(vbytes as u64);
            self.observe(now, ObsPath::CacheIn, vbytes);
            self.loc.insert(victim, Loc::Cached);
            settled = settled.max(done);
            for e in evicted {
                let ebytes = self.store.wire_bytes(e);
                if !self.disk.contains(e) {
                    let (_, wdone) = self.disk.write(done, e, ebytes);
                    self.metrics.disk_write.record(ebytes as u64);
                    self.observe(done, ObsPath::DiskWrite, ebytes);
                    settled = settled.max(wdone);
                }
                self.loc.insert(e, Loc::OnDisk);
            }
        }
        settled
    }

    /// Make a page's bytes available at IC `ic` for shipping; returns when
    /// they are ready.
    pub(crate) fn ic_fetch_page(&mut self, now: SimTime, ic: usize, page: PageId) -> SimTime {
        match self.loc.get(&page).copied() {
            Some(Loc::IcLocal(owner)) => {
                debug_assert_eq!(owner, ic, "operand pages are delivered to their IC");
                self.ic_memory[ic].touch(page);
                now
            }
            Some(Loc::Cached) => {
                let (_, done) = self.cache.read(now, page);
                let bytes = self.store.wire_bytes(page);
                self.metrics.cache_out.record(bytes as u64);
                self.observe(now, ObsPath::CacheOut, bytes);
                done
            }
            Some(Loc::OnDisk) | None => {
                let bytes = self.store.wire_bytes(page);
                let (_, rdone) = self.disk.read(now, page, bytes);
                self.metrics.disk_read.record(bytes as u64);
                self.observe(now, ObsPath::DiskRead, bytes);
                // Pull through the cache segment on the way up.
                let (_, cdone, evicted) = self.cache.insert(rdone, ic, page, bytes);
                self.metrics.cache_in.record(bytes as u64);
                self.observe(rdone, ObsPath::CacheIn, bytes);
                self.loc.insert(page, Loc::Cached);
                let mut settled = cdone;
                for e in evicted {
                    let ebytes = self.store.wire_bytes(e);
                    if !self.disk.contains(e) {
                        let (_, wdone) = self.disk.write(cdone, e, ebytes);
                        self.metrics.disk_write.record(ebytes as u64);
                        self.observe(cdone, ObsPath::DiskWrite, ebytes);
                        settled = settled.max(wdone);
                    }
                    self.loc.insert(e, Loc::OnDisk);
                }
                settled
            }
            Some(Loc::AtIp(_)) => now, // direct routing: shipped IP→IP
        }
    }

    /// Drop a fully consumed page from the hierarchy (contents stay in the
    /// store for the exact data path).
    pub(crate) fn reclaim_page(&mut self, page: PageId) {
        match self.loc.remove(&page) {
            Some(Loc::IcLocal(ic)) => self.ic_memory[ic].remove(page),
            Some(Loc::Cached) => self.cache.discard(page),
            Some(Loc::OnDisk) | Some(Loc::AtIp(_)) | None => {}
        }
        self.disk.discard(page);
    }

    // ---------------------------------------------------------- main loop

    /// Run to completion.
    ///
    /// # Panics
    /// Panics if the simulation wedges with unfinished instructions (an
    /// internal protocol bug).
    pub fn run(mut self) -> (Vec<Relation>, RingMetrics) {
        self.mc_bootstrap();
        while let Some((now, event)) = self.queue.pop() {
            match event {
                Event::Deliver { to, msg } => match to {
                    Node::Mc => self.mc_handle(now, msg),
                    Node::Ic(ic) => self.ic_handle(now, ic, msg),
                    Node::Ip(ip) => self.ip_handle(now, ip, msg),
                },
                Event::IpCompute { ip } => self.ip_compute_done(now, ip),
                Event::QueryArrival { query } => self.mc_query_arrival(now, query),
            }
        }
        for (iid, st) in self.ic_instrs.iter().enumerate() {
            if !st.done {
                let ips: Vec<String> = st
                    .granted
                    .iter()
                    .map(|&ip| {
                        let s = &self.ips[ip];
                        format!(
                            "ip{ip}: busy={} outer={:?} q={} irc_joined={} irc_missed={} \
                             total={:?} adv={} catchup={:?} pend={} flushp={}",
                            s.busy,
                            s.outer.map(|(i, _)| i),
                            s.inner_queue.len(),
                            s.joined_count,
                            s.irc.iter().filter(|e| e.missed && !e.joined).count(),
                            s.inner_total,
                            s.advance_in_flight,
                            s.catchup_in_flight,
                            s.pending_input.len(),
                            s.flush_pending,
                        )
                    })
                    .collect();
                panic!(
                    "ring machine wedged: instruction {iid} ({}) unfinished \
                     (granted={:?} parked={:?} flushing={:?} outer_next={} outers_done={} \
                     operands=[{}]) IPs: {ips:?}",
                    self.program.instructions[iid].op_name,
                    st.granted,
                    st.parked,
                    st.flushing,
                    st.outer_next,
                    st.outers_done,
                    st.operands
                        .iter()
                        .map(|t| format!("{}/{}c={}", t.consumed(), t.len(), t.is_complete()))
                        .collect::<Vec<_>>()
                        .join(", "),
                );
            }
        }
        self.finalize()
    }

    fn finalize(mut self) -> (Vec<Relation>, RingMetrics) {
        let elapsed = self
            .query_done_at
            .iter()
            .map(|t| t.expect("all queries completed"))
            .max()
            .unwrap_or(SimTime::ZERO);
        self.metrics.elapsed = elapsed;
        self.metrics.query_completions = self
            .query_done_at
            .iter()
            .map(|t| t.expect("all queries completed"))
            .collect();
        self.metrics.query_arrivals = self.arrivals.clone();
        self.metrics.inner_ring = self.inner_ring.traffic;
        self.metrics.outer_ring = self.outer_ring.traffic;
        self.metrics.instruction_timeline = self
            .ic_instrs
            .iter()
            .enumerate()
            .map(|(iid, st)| {
                (
                    self.program.instructions[iid].op_name.to_string(),
                    self.program.instructions[iid].query,
                    st.first_packet.unwrap_or(SimTime::ZERO),
                    st.completed.unwrap_or(SimTime::ZERO),
                )
            })
            .collect();
        // Device counters maintained incrementally; disk totals double-check:
        debug_assert_eq!(self.metrics.disk_read.bytes, self.disk.read_traffic.bytes);

        let results: Vec<Relation> = self
            .program
            .roots
            .iter()
            .enumerate()
            .map(|(q, &root)| {
                let schema = self.program.instructions[root].output_schema.clone();
                self.store
                    .materialize(
                        &format!("q{q}_result"),
                        schema,
                        self.params.page_size,
                        &self.query_results[q],
                    )
                    .expect("result pages conform to root schema")
            })
            .collect();
        (results, self.metrics)
    }

    /// Total compute ingest duration for a set of pages.
    pub(crate) fn compute_time_for(&self, pages: &[PageId], tuple_ops: usize) -> Duration {
        let bytes: usize = pages.iter().map(|&p| self.store.wire_bytes(p)).sum();
        self.cost().compute_time(bytes, tuple_ops)
    }
}

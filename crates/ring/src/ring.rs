//! The shift-register-insertion ring (Distributed Loop Computer Network,
//! refs \[13,14\] of the paper).
//!
//! DLCN's insertion buffers let every node transmit variable-length
//! messages concurrently — the ring does not require a token or fixed
//! slots. The model here:
//!
//! * each node serializes **its own** transmissions at the ring bit rate
//!   (one insertion buffer per node),
//! * a message travels `hops` node-to-node links, each adding a fixed
//!   shift-register delay,
//! * a **broadcast** is transmitted once and travels the full circle.
//!
//! Link-level contention between distinct senders is not modelled (DLCN's
//! insertion buffers absorb it); the paper's own Figure 4.2 analysis treats
//! the ring as a shared medium whose *average* load must stay under the bit
//! rate, which is exactly what [`Ring::mean_mbps`] reports.

use df_sim::stats::ByteCounter;
use df_sim::{Duration, SimTime};

/// A unidirectional insertion ring with `nodes` stations.
///
/// ```
/// use df_ring::Ring;
/// use df_sim::{Duration, SimTime};
/// let mut ring = Ring::new("outer", 8, 40_000_000.0, Duration::from_micros(1));
/// // 1000 bytes at 40 Mbps = 200 µs serialization + 3 hops of 1 µs.
/// let delivered = ring.send(SimTime::ZERO, 2, 5, 1000);
/// assert_eq!(delivered.as_nanos(), 200_000 + 3_000);
/// // A broadcast is one transmission circling the whole ring.
/// ring.broadcast(SimTime::ZERO, 0, 1000);
/// assert_eq!(ring.traffic.transfers, 2);
/// ```
#[derive(Debug, Clone)]
pub struct Ring {
    name: &'static str,
    nodes: usize,
    bits_per_sec: f64,
    hop_latency: Duration,
    /// Per-node transmit availability (insertion buffer serialization).
    tx_free: Vec<SimTime>,
    /// Total traffic offered to the ring.
    pub traffic: ByteCounter,
}

impl Ring {
    /// A ring of `nodes` stations at `bits_per_sec` with `hop_latency` per
    /// station-to-station link.
    ///
    /// # Panics
    /// Panics if `nodes == 0`.
    pub fn new(name: &'static str, nodes: usize, bits_per_sec: f64, hop_latency: Duration) -> Ring {
        assert!(nodes > 0, "ring {name:?} needs at least one node");
        Ring {
            name,
            nodes,
            bits_per_sec,
            hop_latency,
            tx_free: vec![SimTime::ZERO; nodes],
            traffic: ByteCounter::new(),
        }
    }

    /// The ring's diagnostic name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Number of stations.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Hops from `from` to `to` travelling in ring direction.
    pub fn hops(&self, from: usize, to: usize) -> usize {
        assert!(from < self.nodes && to < self.nodes, "node out of range");
        (to + self.nodes - from) % self.nodes
    }

    /// Serialization time for `bytes` at the ring rate.
    pub fn transmit_time(&self, bytes: usize) -> Duration {
        Duration::from_secs_f64(bytes as f64 * 8.0 / self.bits_per_sec)
    }

    /// Send `bytes` from `from` to `to` at (or after) `now`; returns the
    /// delivery time at `to`.
    pub fn send(&mut self, now: SimTime, from: usize, to: usize, bytes: usize) -> SimTime {
        let hops = self.hops(from, to).max(1); // self-send still circles once
        self.transfer(now, from, bytes, hops)
    }

    /// Broadcast `bytes` from `from`; one transmission circles the whole
    /// ring. Returns the time the message has reached *every* station.
    pub fn broadcast(&mut self, now: SimTime, from: usize, bytes: usize) -> SimTime {
        let hops = self.nodes;
        self.transfer(now, from, bytes, hops)
    }

    fn transfer(&mut self, now: SimTime, from: usize, bytes: usize, hops: usize) -> SimTime {
        self.traffic.record(bytes as u64);
        let start = now.max(self.tx_free[from]);
        let tx_done = start + self.transmit_time(bytes);
        self.tx_free[from] = tx_done;
        tx_done + self.hop_latency.saturating_mul(hops as u64)
    }

    /// Average offered load in Mbps over `[0, horizon]` — the Figure 4.2
    /// metric ("total number of bytes transferred divided by the execution
    /// time").
    pub fn mean_mbps(&self, horizon: SimTime) -> f64 {
        self.traffic.mean_bandwidth_mbps(horizon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring() -> Ring {
        Ring::new("outer", 10, 40_000_000.0, Duration::from_micros(1))
    }

    #[test]
    fn hop_arithmetic_wraps() {
        let r = ring();
        assert_eq!(r.hops(2, 5), 3);
        assert_eq!(r.hops(5, 2), 7);
        assert_eq!(r.hops(3, 3), 0);
    }

    #[test]
    fn delivery_time_components() {
        let mut r = ring();
        // 1000 bytes at 40 Mbps = 200 µs; 3 hops = 3 µs.
        let t = r.send(SimTime::ZERO, 2, 5, 1000);
        assert_eq!(t.as_nanos(), 200_000 + 3_000);
        assert_eq!(r.traffic.bytes, 1000);
    }

    #[test]
    fn sender_serializes_its_messages() {
        let mut r = ring();
        let t1 = r.send(SimTime::ZERO, 0, 1, 1000);
        let t2 = r.send(SimTime::ZERO, 0, 1, 1000);
        assert!(t2 > t1, "second message queues behind the first");
        // A different sender is not blocked (insertion ring).
        let t3 = r.send(SimTime::ZERO, 5, 6, 1000);
        assert_eq!(t3, t1);
    }

    #[test]
    fn broadcast_circles_once() {
        let mut r = ring();
        let t = r.broadcast(SimTime::ZERO, 0, 1000);
        assert_eq!(t.as_nanos(), 200_000 + 10_000); // full circle = 10 hops
        assert_eq!(r.traffic.transfers, 1, "broadcast is one transmission");
    }

    #[test]
    fn mean_mbps() {
        let mut r = ring();
        r.send(SimTime::ZERO, 0, 1, 5_000_000); // 40 Mbit
        let horizon = SimTime::from_nanos(2_000_000_000); // 2 s
        assert!((r.mean_mbps(horizon) - 20.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_node_panics() {
        let mut r = ring();
        r.send(SimTime::ZERO, 0, 99, 10);
    }
}

//! Instruction-controller logic: the §4.2 protocol.
//!
//! An IC builds page tables for its instruction's operands, compacts
//! arriving partial result pages into full pages, acquires IPs from the MC,
//! distributes instruction packets, answers the join protocol's inner-page
//! requests (broadcasting with the "soon afterwards" duplicate-suppression
//! rule), sets flush-when-done on final packets, and releases IPs back to
//! the MC.

use df_core::instr::{InstrId, UnitGen};
use df_relalg::{Page, TupleBuf};
use df_sim::SimTime;
use df_storage::{PageId, PageTable};

use crate::machine::{Loc, Msg, Node, PacketKind, RingMachine};
use crate::packet::{
    instruction_packet_size, result_packet_size, ControlMessage, CONTROL_PACKET_SIZE,
};

impl RingMachine {
    /// Handle a message addressed to IC `ic`.
    pub(crate) fn ic_handle(&mut self, now: SimTime, ic: usize, msg: Msg) {
        match msg {
            Msg::AssignInstr { instr } => {
                debug_assert_eq!(self.ic_instrs[instr].ic, ic);
                self.ic_instrs[instr].active = true;
                self.ic_reevaluate(now, instr);
                self.ic_check_done(now, instr);
            }
            Msg::IpGrant { instr, ip } => {
                let st = &mut self.ic_instrs[instr];
                st.outstanding = st.outstanding.saturating_sub(1);
                if st.done {
                    // Instruction finished while the grant was in flight.
                    self.send_inner(now, Node::Ic(ic), Node::Mc, Msg::IpRelease { ip });
                    return;
                }
                st.granted.push(ip);
                self.ips[ip].instr = Some(instr);
                self.ic_give_work(now, instr, ip);
            }
            Msg::Result {
                from_ip,
                producer,
                page,
            } => {
                debug_assert!(from_ip < self.params.ips, "result from unknown IP");
                self.ic_receive_result(now, ic, producer, page);
            }
            Msg::StreamComplete { instr, slot } => {
                self.ic_flush_compaction(now, instr, slot);
                self.ic_instrs[instr].operands[slot].mark_complete();
                self.ic_on_operand_complete(now, instr, slot);
            }
            Msg::Control {
                from_ip,
                instr,
                message,
            } => match message {
                ControlMessage::Done => {
                    let st = &mut self.ic_instrs[instr];
                    if let Some(pos) = st.flushing.iter().position(|&p| p == from_ip) {
                        st.flushing.swap_remove(pos);
                        self.ic_release_ip(now, instr, from_ip);
                    } else {
                        self.ic_give_work(now, instr, from_ip);
                    }
                }
                ControlMessage::RequestInner { index } => {
                    self.ic_serve_inner(now, instr, from_ip, index as usize, false);
                }
                ControlMessage::RequestMissed { index } => {
                    self.ic_serve_inner(now, instr, from_ip, index as usize, true);
                }
                ControlMessage::RequestOuter => {
                    self.ic_instrs[instr].outers_done += 1;
                    self.ic_give_work(now, instr, from_ip);
                    self.ic_check_done(now, instr);
                }
            },
            other => panic!("IC received unexpected message {other:?}"),
        }
    }

    // --------------------------------------------------------- result flow

    /// A result packet arrived: register the page with the consuming
    /// operand (compacting partial pages, §4.2) or collect it as a query
    /// result.
    fn ic_receive_result(&mut self, now: SimTime, ic: usize, producer: InstrId, page: PageId) {
        match self.program.instructions[producer].parent {
            None => {
                // Root output: collect.
                let q = self.program.instructions[producer].query;
                self.ic_store_page(now, ic, page);
                self.query_results[q].push(page);
            }
            Some((parent, slot)) => {
                debug_assert_eq!(self.ic_instrs[parent].ic, ic);
                // Shared handle — the page body is never deep-copied here.
                let incoming = self.store.get_arc(page);
                let full = incoming.is_full();
                let direct = matches!(self.loc.get(&page), Some(Loc::AtIp(_)));
                if full {
                    // Fast path: register without recopying.
                    if !direct {
                        self.ic_store_page(now, ic, page);
                    }
                    self.ic_register_operand_page(now, parent, slot, page);
                } else {
                    // Compact partial pages into full pages: whole encoded
                    // images are memcpy'd, never decoded.
                    let mut produced: Vec<PageId> = Vec::new();
                    {
                        let page_size = self.params.page_size;
                        let st = &mut self.ic_instrs[parent];
                        let schema = st.operands[slot].schema().clone();
                        let mut batch = TupleBuf::new(schema.clone());
                        for t in incoming.tuple_refs() {
                            batch.push_ref(&t);
                        }
                        while !batch.is_empty() {
                            let buf = st.compaction[slot].get_or_insert_with(|| {
                                Page::new(schema.clone(), page_size)
                                    .expect("operand page size validated")
                            });
                            batch.drain_into(buf);
                            if buf.is_full() {
                                let full_page = st.compaction[slot].take().expect("just filled");
                                produced.push(self.store.put(full_page));
                            }
                        }
                    }
                    // The partial page itself is dead after compaction.
                    self.reclaim_page(page);
                    self.store.remove(page);
                    for id in produced {
                        self.ic_store_page(now, ic, id);
                        self.ic_register_operand_page(now, parent, slot, id);
                    }
                }
            }
        }
    }

    /// Flush the remainder of a compaction buffer when the producer
    /// stream terminates.
    fn ic_flush_compaction(&mut self, now: SimTime, instr: InstrId, slot: usize) {
        let ic = self.ic_instrs[instr].ic;
        if let Some(buf) = self.ic_instrs[instr].compaction[slot].take() {
            if !buf.is_empty() {
                let id = self.store.put(buf);
                self.ic_store_page(now, ic, id);
                self.ic_register_operand_page(now, instr, slot, id);
            }
        }
    }

    /// Register a (full or final-partial) page in an operand table and
    /// react: hand work to parked IPs, serve deferred join requests, and
    /// re-evaluate the IP demand.
    fn ic_register_operand_page(
        &mut self,
        now: SimTime,
        instr: InstrId,
        slot: usize,
        page: PageId,
    ) {
        self.ic_instrs[instr].operands[slot].push(page);
        match self.program.instructions[instr].kernel.unit_gen() {
            UnitGen::PerPage => {
                while !self.ic_instrs[instr].parked.is_empty()
                    && self.ic_instrs[instr].operands[0].available() > 0
                {
                    let ip = self.ic_instrs[instr].parked.remove(0);
                    self.ic_give_work(now, instr, ip);
                }
            }
            UnitGen::PerPair => {
                if slot == 1 {
                    let idx = self.ic_instrs[instr].operands[1].len() - 1;
                    while self.ic_instrs[instr].last_broadcast.len() <= idx {
                        self.ic_instrs[instr].last_broadcast.push(None);
                    }
                    // Serve advance requests that were waiting for this page.
                    let waiting: Vec<usize> = {
                        let st = &mut self.ic_instrs[instr];
                        let hit: Vec<usize> = st
                            .deferred_requests
                            .iter()
                            .filter(|&&(_, i)| i == idx)
                            .map(|&(ip, _)| ip)
                            .collect();
                        st.deferred_requests.retain(|&(_, i)| i != idx);
                        hit
                    };
                    if !waiting.is_empty() {
                        self.ic_serve_inner(now, instr, waiting[0], idx, false);
                    }
                }
                // Any parked IP can now potentially take an outer.
                while !self.ic_instrs[instr].parked.is_empty() {
                    let st = &self.ic_instrs[instr];
                    let outer_ready = st.outer_next < st.operands[0].len();
                    let inner_ready = !st.operands[1].is_empty();
                    if !(outer_ready && inner_ready) {
                        break;
                    }
                    let ip = self.ic_instrs[instr].parked.remove(0);
                    self.ic_give_work(now, instr, ip);
                }
            }
            UnitGen::WholeRelation => {}
        }
        self.ic_reevaluate(now, instr);
    }

    /// An operand stream completed.
    fn ic_on_operand_complete(&mut self, now: SimTime, instr: InstrId, slot: usize) {
        let class = self.program.instructions[instr].kernel.unit_gen();
        match class {
            UnitGen::PerPair if slot == 1 && !self.ic_instrs[instr].inner_complete_sent => {
                self.ic_instrs[instr].inner_complete_sent = true;
                let total = self.ic_instrs[instr].operands[1].len();
                let targets = self.ic_instrs[instr].granted.clone();
                let ic = self.ic_instrs[instr].ic;
                self.ic_instrs[instr]
                    .deferred_requests
                    .retain(|&(_, i)| i < total);
                if !targets.is_empty() {
                    self.broadcast_outer(now, Node::Ic(ic), CONTROL_PACKET_SIZE, &targets, || {
                        Msg::InnerComplete { instr, total }
                    });
                }
            }
            UnitGen::PerPage if slot == 0 => {
                // Parked IPs with nothing left to do must be flushed.
                while self.ic_instrs[instr].operands[0].available() == 0
                    && !self.ic_instrs[instr].parked.is_empty()
                {
                    let ip = self.ic_instrs[instr].parked.remove(0);
                    self.ic_flush_ip(now, instr, ip);
                }
            }
            UnitGen::WholeRelation => {
                let st = &self.ic_instrs[instr];
                if st.operands.iter().all(PageTable::is_complete) && !st.final_sent {
                    if let Some(ip) = self.ic_instrs[instr].parked.pop() {
                        self.ic_send_whole(now, instr, ip);
                    } else {
                        self.ic_reevaluate(now, instr);
                    }
                }
            }
            _ => {}
        }
        // Join: parked IPs may need flushing when both streams end.
        if class == UnitGen::PerPair {
            let st = &self.ic_instrs[instr];
            if st.operands.iter().all(PageTable::is_complete)
                && st.outer_next >= st.operands[0].len()
            {
                while let Some(ip) = self.ic_instrs[instr].parked.pop() {
                    self.ic_flush_ip(now, instr, ip);
                }
            }
        }
        self.ic_reevaluate(now, instr);
        self.ic_check_done(now, instr);
    }

    // ------------------------------------------------------------ dispatch

    /// Give `ip` its next piece of work for `instr` (or park / flush it).
    fn ic_give_work(&mut self, now: SimTime, instr: InstrId, ip: usize) {
        match self.program.instructions[instr].kernel.unit_gen() {
            UnitGen::PerPage => {
                let next = self.ic_instrs[instr].operands[0].take_next();
                match next {
                    Some(page) => {
                        let flush = self.ic_instrs[instr].operands[0].exhausted();
                        if flush {
                            self.ic_instrs[instr].flushing.push(ip);
                        }
                        self.ic_send_instruction(
                            now,
                            instr,
                            ip,
                            &[page],
                            PacketKind::UnaryPage { page, flush },
                        );
                        // Single-use intermediate pages are dead at the IC
                        // once shipped.
                        if self.program.instructions[instr].operands[0]
                            .source
                            .is_none()
                        {
                            self.reclaim_page(page);
                        }
                    }
                    None if self.ic_instrs[instr].operands[0].is_complete() => {
                        self.ic_flush_ip(now, instr, ip);
                    }
                    None => self.ic_instrs[instr].parked.push(ip),
                }
            }
            UnitGen::PerPair => self.ic_assign_outer(now, instr, ip),
            UnitGen::WholeRelation => {
                let ready = self.ic_instrs[instr]
                    .operands
                    .iter()
                    .all(PageTable::is_complete);
                if ready && !self.ic_instrs[instr].final_sent {
                    self.ic_send_whole(now, instr, ip);
                } else {
                    self.ic_instrs[instr].parked.push(ip);
                }
            }
        }
    }

    /// Hand `ip` a new outer page (join protocol), or park / flush it.
    fn ic_assign_outer(&mut self, now: SimTime, instr: InstrId, ip: usize) {
        let (inner_len, inner_complete, outer_len, outer_complete) = {
            let st = &self.ic_instrs[instr];
            (
                st.operands[1].len(),
                st.operands[1].is_complete(),
                st.operands[0].len(),
                st.operands[0].is_complete(),
            )
        };
        // Page-level enabling: need at least one inner page (§3.2) — unless
        // the inner is complete and empty, in which case the join is empty.
        if inner_len == 0 && !inner_complete {
            self.ic_instrs[instr].parked.push(ip);
            return;
        }
        if inner_complete && inner_len == 0 {
            self.ic_flush_ip(now, instr, ip);
            return;
        }
        let st = &self.ic_instrs[instr];
        if st.outer_next < outer_len {
            let idx = st.outer_next;
            let outer_page = st.operands[0].pages()[idx];
            // The first packet to an IP carries the first inner page too
            // ("the two operands in the packet"); on re-assignment the IP
            // re-requests inner pages through the broadcast stream.
            let first_inner = if self.ips[ip].outer.is_none() && self.ips[ip].irc.is_empty() {
                Some((0usize, st.operands[1].pages()[0]))
            } else {
                None
            };
            self.ic_instrs[instr].outer_next += 1;
            self.ic_instrs[instr].outer_assigned_at.insert(ip, now);
            let mut pages = vec![outer_page];
            if let Some((_, p)) = first_inner {
                pages.push(p);
            }
            self.ic_send_instruction(
                now,
                instr,
                ip,
                &pages,
                PacketKind::JoinOuter {
                    outer_idx: idx,
                    page: outer_page,
                    first_inner,
                },
            );
        } else if !outer_complete {
            self.ic_instrs[instr].parked.push(ip);
        } else {
            self.ic_flush_ip(now, instr, ip);
        }
    }

    /// Ship a whole-relation packet (blocking kernels run on one IP).
    fn ic_send_whole(&mut self, now: SimTime, instr: InstrId, ip: usize) {
        self.ic_instrs[instr].final_sent = true;
        self.ic_instrs[instr].flushing.push(ip);
        let pages: Vec<Vec<PageId>> = self.ic_instrs[instr]
            .operands
            .iter()
            .map(|t| t.pages().to_vec())
            .collect();
        let flat: Vec<PageId> = pages.iter().flatten().copied().collect();
        self.ic_send_instruction(now, instr, ip, &flat, PacketKind::WholeRelation { pages });
    }

    /// Tell `ip` to flush its output buffer and report done.
    fn ic_flush_ip(&mut self, now: SimTime, instr: InstrId, ip: usize) {
        self.ic_instrs[instr].flushing.push(ip);
        self.ic_send_instruction(now, instr, ip, &[], PacketKind::FlushNow);
    }

    /// Build and send an instruction packet (Fig 4.3) to `ip`, staging the
    /// operand pages out of the storage hierarchy first. Pages homed at an
    /// IP (§5 direct routing) travel IP→IP instead of inflating the packet.
    fn ic_send_instruction(
        &mut self,
        now: SimTime,
        instr: InstrId,
        ip: usize,
        pages: &[PageId],
        kind: PacketKind,
    ) {
        let ic = self.ic_instrs[instr].ic;
        let mut ready = now;
        let mut packet_page_bytes: Vec<usize> = Vec::new();
        for &p in pages {
            if let Some(Loc::AtIp(home)) = self.loc.get(&p).copied() {
                // Direct IP→IP transfer of the page body.
                let bytes = self.store.wire_bytes(p);
                let t =
                    self.outer_ring
                        .send(now, self.params.ics + home, self.params.ics + ip, bytes);
                ready = ready.max(t);
                self.loc.insert(p, Loc::AtIp(ip));
            } else {
                let t = self.ic_fetch_page(now, ic, p);
                ready = ready.max(t);
                packet_page_bytes.push(self.store.wire_bytes(p));
            }
        }
        let bytes = instruction_packet_size(&packet_page_bytes);
        self.metrics.instruction_packets += 1;
        if self.ic_instrs[instr].first_packet.is_none() {
            self.ic_instrs[instr].first_packet = Some(now);
        }
        if std::env::var_os("DF_TRACE").is_some() {
            eprintln!(
                "{:9.3}s SEND instr={instr} ({}) ip={ip} ready={:9.3}s kind={kind:?}",
                now.as_secs_f64(),
                self.program.instructions[instr].op_name,
                ready.as_secs_f64()
            );
        }
        self.send_outer(
            ready,
            Node::Ic(ic),
            Node::Ip(ip),
            bytes,
            Msg::Packet { instr, kind },
        );
    }

    /// Serve an inner-page request (join protocol): broadcast with the
    /// "soon afterwards" duplicate-suppression window, always honour
    /// catch-up requests, defer requests for pages not yet produced.
    fn ic_serve_inner(
        &mut self,
        now: SimTime,
        instr: InstrId,
        from_ip: usize,
        idx: usize,
        missed: bool,
    ) {
        let ic = self.ic_instrs[instr].ic;
        let produced = self.ic_instrs[instr].operands[1].len();
        if idx >= produced {
            if self.ic_instrs[instr].operands[1].is_complete() {
                // Requested past the end after completion (race): re-announce.
                let total = produced;
                self.send_outer(
                    now,
                    Node::Ic(ic),
                    Node::Ip(from_ip),
                    CONTROL_PACKET_SIZE,
                    Msg::InnerComplete { instr, total },
                );
            } else {
                self.ic_instrs[instr].deferred_requests.push((from_ip, idx));
            }
            return;
        }
        let page = self.ic_instrs[instr].operands[1].pages()[idx];
        if missed {
            // Catch-up: unicast, always served.
            let ready = self.ic_fetch_page(now, ic, page);
            let bytes = instruction_packet_size(&[self.store.wire_bytes(page)]);
            self.send_outer(
                ready,
                Node::Ic(ic),
                Node::Ip(from_ip),
                bytes,
                Msg::BroadcastInner { instr, idx, page },
            );
            return;
        }
        while self.ic_instrs[instr].last_broadcast.len() <= idx {
            self.ic_instrs[instr].last_broadcast.push(None);
        }
        if let Some(t) = self.ic_instrs[instr].last_broadcast[idx] {
            // "Subsequent requests for the same page which are received by
            // the IC soon afterwards can be ignored." Safe only if the
            // requester was already holding its current outer page when the
            // broadcast went out — otherwise it ignored that broadcast
            // without an IRC record and would starve.
            let assigned = self.ic_instrs[instr]
                .outer_assigned_at
                .get(&from_ip)
                .copied()
                .unwrap_or(SimTime::ZERO);
            if now.saturating_since(t) < self.params.rebroadcast_window && t >= assigned {
                self.metrics.requests_ignored += 1;
                return;
            }
        }
        self.ic_instrs[instr].last_broadcast[idx] = Some(now);
        self.metrics.broadcasts += 1;
        let ready = self.ic_fetch_page(now, ic, page);
        let bytes = instruction_packet_size(&[self.store.wire_bytes(page)]);
        let targets = self.ic_instrs[instr].granted.clone();
        self.broadcast_outer(ready, Node::Ic(ic), bytes, &targets, || {
            Msg::BroadcastInner { instr, idx, page }
        });
    }

    // --------------------------------------------------- demand & teardown

    /// Request IPs from the MC to match the instruction's available work.
    fn ic_reevaluate(&mut self, now: SimTime, instr: InstrId) {
        let st = &self.ic_instrs[instr];
        if !st.active || st.done {
            return;
        }
        let desired = match self.program.instructions[instr].kernel.unit_gen() {
            UnitGen::PerPage => st.operands[0].available().min(self.params.ips),
            UnitGen::PerPair => {
                if st.operands[1].is_empty() && !st.operands[1].is_complete() {
                    0
                } else {
                    (st.operands[0].len() - st.outer_next).min(self.params.ips)
                }
            }
            UnitGen::WholeRelation => {
                if st.operands.iter().all(PageTable::is_complete) && !st.final_sent {
                    1
                } else {
                    0
                }
            }
        };
        let have = st.granted.len() + st.outstanding;
        if desired > have {
            let want = desired - have;
            let ic = st.ic;
            self.ic_instrs[instr].outstanding += want;
            self.send_inner(
                now,
                Node::Ic(ic),
                Node::Mc,
                Msg::IpRequest { ic, instr, want },
            );
        }
    }

    /// Return `ip` to the MC pool.
    fn ic_release_ip(&mut self, now: SimTime, instr: InstrId, ip: usize) {
        let st = &mut self.ic_instrs[instr];
        if let Some(pos) = st.granted.iter().position(|&p| p == ip) {
            st.granted.swap_remove(pos);
        }
        let ipst = &mut self.ips[ip];
        ipst.instr = None;
        ipst.outer = None;
        ipst.inner_queue.clear();
        ipst.irc.clear();
        ipst.joined_count = 0;
        ipst.inner_total = None;
        ipst.catchup_in_flight = None;
        ipst.advance_in_flight = false;
        ipst.flush_pending = false;
        debug_assert!(
            ipst.out_buffer.is_none(),
            "released IP still buffers output"
        );
        let ic = self.ic_instrs[instr].ic;
        self.send_inner(now, Node::Ic(ic), Node::Mc, Msg::IpRelease { ip });
        self.ic_check_done(now, instr);
    }

    /// Detect instruction completion, announce it, and reclaim pages.
    fn ic_check_done(&mut self, now: SimTime, instr: InstrId) {
        let st = &self.ic_instrs[instr];
        if st.done || !st.active {
            return;
        }
        if !st.operands.iter().all(PageTable::is_complete) {
            return;
        }
        if !st.granted.is_empty() || !st.parked.is_empty() || !st.flushing.is_empty() {
            return;
        }
        let work_done = match self.program.instructions[instr].kernel.unit_gen() {
            UnitGen::PerPage => st.operands[0].exhausted(),
            UnitGen::PerPair => {
                let outer_len = st.operands[0].len();
                let inner_empty = st.operands[1].is_empty();
                inner_empty || (st.outer_next >= outer_len && st.outers_done >= outer_len)
            }
            UnitGen::WholeRelation => st.final_sent,
        };
        if !work_done {
            return;
        }

        self.ic_instrs[instr].done = true;
        self.ic_instrs[instr].completed = Some(now);
        let ic = self.ic_instrs[instr].ic;
        // Reclaim intermediate operand pages (join pages were retained for
        // catch-up requests until now).
        let dead: Vec<PageId> = self.program.instructions[instr]
            .operands
            .iter()
            .zip(&self.ic_instrs[instr].operands)
            .filter(|(spec, _)| spec.source.is_none())
            .flat_map(|(_, table)| table.pages().iter().copied())
            .collect();
        for p in dead {
            self.reclaim_page(p);
        }

        self.send_inner(now, Node::Ic(ic), Node::Mc, Msg::InstrDone { instr });
        if let Some((parent, slot)) = self.program.instructions[instr].parent {
            // Guard delay: make sure the last result packet (sent by an IP
            // before its final Done) has certainly landed at the parent IC
            // before the stream-complete announcement.
            let guard = self
                .params
                .outer_transit(result_packet_size(self.params.page_size));
            let parent_ic = self.ic_instrs[parent].ic;
            self.send_outer(
                now + guard,
                Node::Ic(ic),
                Node::Ic(parent_ic),
                CONTROL_PACKET_SIZE,
                Msg::StreamComplete {
                    instr: parent,
                    slot,
                },
            );
        }
    }
}

//! Master-controller logic: query admission (concurrency control) and
//! IP-pool arbitration.
//!
//! Paper §4.1: the MC queues incoming queries, "checks [each] for
//! concurrency conflicts with other executing queries, and then distributes
//! a subset of the instructions from the query to a set of instruction
//! controllers", and arbitrates IC requests for processors "in a manner
//! which maximizes system performance by insuring that processors are
//! distributed across all nodes in the query tree" — implemented here as a
//! round-robin single-IP grant queue.

use df_sim::SimTime;

use crate::machine::{Msg, Node, RingMachine};

impl RingMachine {
    /// Schedule every query's arrival (t = 0 for plain batches) and admit
    /// what arrives immediately.
    pub(crate) fn mc_bootstrap(&mut self) {
        // Queries arriving exactly at t = 0 enter the queue directly so the
        // "delayed by CC" metric reflects genuine lock conflicts.
        let arrivals = self.arrivals.clone();
        for (query, &at) in arrivals.iter().enumerate() {
            if at == SimTime::ZERO {
                self.mc.waiting.push_back(query);
            } else {
                self.queue
                    .schedule(at, crate::machine::Event::QueryArrival { query });
            }
        }
        let blocked = self.mc_try_admit(SimTime::ZERO);
        self.metrics.queries_delayed_by_cc = blocked as u64;
    }

    /// A query arrived mid-run: enqueue and try admission.
    pub(crate) fn mc_query_arrival(&mut self, now: SimTime, query: usize) {
        self.mc.waiting.push_back(query);
        let blocked = self.mc_try_admit(now);
        self.metrics.queries_delayed_by_cc +=
            u64::from(blocked > 0 && self.mc.waiting.contains(&query));
    }

    /// Handle an inner-ring message addressed to the MC.
    pub(crate) fn mc_handle(&mut self, now: SimTime, msg: Msg) {
        match msg {
            Msg::IpRequest { ic, instr, want } => {
                // Merge into an existing entry for this instruction if one
                // is still queued; otherwise append a new one.
                if let Some(entry) = self.mc.requests.iter_mut().find(|(_, i, _)| *i == instr) {
                    entry.2 += want;
                } else {
                    self.mc.requests.push_back((ic, instr, want));
                }
                self.mc_grant_loop(now);
            }
            Msg::IpRelease { ip } => {
                self.mc.free_ips.push_back(ip);
                self.mc_grant_loop(now);
            }
            Msg::InstrDone { instr } => {
                let query = self.program.instructions[instr].query;
                self.mc.remaining[query] -= 1;
                if self.mc.remaining[query] == 0 {
                    self.query_done_at[query] = Some(now);
                    if self.params.concurrency_control {
                        self.mc.locks.release(query);
                    }
                    self.mc_try_admit(now);
                }
            }
            other => panic!("MC received unexpected message {other:?}"),
        }
    }

    /// Admit every waiting query whose lock set is grantable; returns how
    /// many stay blocked.
    fn mc_try_admit(&mut self, now: SimTime) -> usize {
        let mut still_waiting = std::collections::VecDeque::new();
        while let Some(query) = self.mc.waiting.pop_front() {
            let admit = !self.params.concurrency_control
                || self.mc.locks.compatible(&self.mc.lock_requests[query]);
            if admit {
                if self.params.concurrency_control {
                    let req = self.mc.lock_requests[query].clone();
                    self.mc.locks.grant(query, &req);
                }
                // Distribute the query's instructions to their ICs.
                let instrs: Vec<usize> = self
                    .program
                    .instructions
                    .iter()
                    .filter(|i| i.query == query)
                    .map(|i| i.id)
                    .collect();
                for iid in instrs {
                    let ic = self.ic_instrs[iid].ic;
                    self.send_inner(now, Node::Mc, Node::Ic(ic), Msg::AssignInstr { instr: iid });
                }
            } else {
                still_waiting.push_back(query);
            }
        }
        self.mc.waiting = still_waiting;
        self.mc.waiting.len()
    }

    /// Grant free IPs round-robin, one per requesting instruction per turn
    /// ("insuring that processors are distributed across all nodes").
    fn mc_grant_loop(&mut self, now: SimTime) {
        while !self.mc.free_ips.is_empty() && !self.mc.requests.is_empty() {
            let (ic, instr, remaining) = self.mc.requests.pop_front().expect("checked non-empty");
            // Skip requests for instructions that have since completed.
            if self.ic_instrs[instr].done {
                continue;
            }
            let ip = self.mc.free_ips.pop_front().expect("checked non-empty");
            self.send_inner(now, Node::Mc, Node::Ic(ic), Msg::IpGrant { instr, ip });
            if remaining > 1 {
                self.mc.requests.push_back((ic, instr, remaining - 1));
            }
        }
    }
}

//! Property-based tests for the simulation kernel's ordering and
//! conservation invariants.

use df_sim::{Duration, EventQueue, Resource, SimTime};
use proptest::prelude::*;

proptest! {
    /// Events come out in (time, insertion) order regardless of insertion
    /// order, and the clock never goes backwards.
    #[test]
    fn event_queue_is_a_stable_time_sort(times in prop::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), i);
        }
        let mut last = (SimTime::ZERO, 0usize);
        let mut seen = Vec::new();
        while let Some((at, idx)) = q.pop() {
            prop_assert!(at >= last.0, "clock went backwards");
            if at == last.0 {
                prop_assert!(idx > last.1 || seen.is_empty(), "FIFO tie-break violated");
            }
            prop_assert_eq!(SimTime::from_nanos(times[idx]), at);
            last = (at, idx);
            seen.push(idx);
        }
        prop_assert_eq!(seen.len(), times.len());
        // Stability: among equal times, indices ascend.
        for w in seen.windows(2) {
            if times[w[0]] == times[w[1]] {
                prop_assert!(w[0] < w[1]);
            }
        }
    }

    /// A resource conserves work: total busy time equals the sum of
    /// services; completions never precede arrivals + service; a single
    /// server never overlaps jobs.
    #[test]
    fn resource_conservation(
        jobs in prop::collection::vec((0u64..10_000, 1u64..500), 1..100),
        servers in 1usize..5,
    ) {
        // Arrivals must be offered in non-decreasing order (the machines'
        // usage pattern).
        let mut sorted = jobs.clone();
        sorted.sort_by_key(|&(a, _)| a);
        let mut r = Resource::new("prop", servers);
        let mut completions: Vec<(SimTime, SimTime, Duration)> = Vec::new();
        let mut total = Duration::ZERO;
        for &(arr, svc) in &sorted {
            let arrival = SimTime::from_nanos(arr);
            let service = Duration::from_nanos(svc);
            let (start, done) = r.submit(arrival, service);
            prop_assert!(start >= arrival);
            prop_assert_eq!(done, start + service);
            completions.push((start, done, service));
            total += service;
        }
        prop_assert_eq!(r.stats().busy, total);
        prop_assert_eq!(r.stats().jobs as usize, sorted.len());
        // Overlap bound: at any job start, at most `servers` jobs are open.
        for &(s, _, _) in &completions {
            let open = completions
                .iter()
                .filter(|&&(s2, d2, _)| s2 <= s && s < d2)
                .count();
            prop_assert!(open <= servers, "{open} jobs open with {servers} servers");
        }
    }

    /// Makespan lower bound: an M-server resource cannot finish earlier
    /// than total_work / M after the first arrival.
    #[test]
    fn resource_respects_capacity_bound(
        services in prop::collection::vec(1u64..1_000, 1..60),
        servers in 1usize..4,
    ) {
        let mut r = Resource::new("bound", servers);
        let mut total: u64 = 0;
        for &svc in &services {
            r.submit(SimTime::ZERO, Duration::from_nanos(svc));
            total += svc;
        }
        let finish = r.all_free().as_nanos();
        prop_assert!(finish >= total / servers as u64);
        prop_assert!(finish <= total, "finish {finish} beyond serial bound {total}");
    }

    /// Duration arithmetic round-trips through seconds within 1 ns.
    #[test]
    fn duration_seconds_round_trip(ns in 0u64..10_000_000_000_000) {
        let d = Duration::from_nanos(ns);
        let back = Duration::from_secs_f64(d.as_secs_f64());
        let diff = back.as_nanos().abs_diff(ns);
        // f64 has 52 bits of mantissa; for < 10^13 ns we stay within ~2 ns.
        prop_assert!(diff <= 2, "{ns} -> {} (diff {diff})", back.as_nanos());
    }
}

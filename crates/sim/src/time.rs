//! Simulated time: integer nanoseconds since the start of the run.
//!
//! Integer time keeps the event queue exactly ordered — two events scheduled
//! at "the same" instant compare equal instead of differing in the 17th
//! decimal digit — which is what makes whole-simulation determinism cheap.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant of simulated time (nanoseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time (nanoseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(u64);

impl SimTime {
    /// The simulation epoch, `t = 0`.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// The raw nanosecond count.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This instant expressed in (fractional) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// This instant expressed in (fractional) milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The span from `earlier` to `self`.
    ///
    /// # Panics
    /// Panics if `earlier` is later than `self`; simulated clocks never run
    /// backwards, so this indicates a scheduling bug in the caller.
    #[inline]
    pub fn since(self, earlier: SimTime) -> Duration {
        assert!(
            earlier.0 <= self.0,
            "SimTime::since: earlier ({earlier}) is after self ({self})"
        );
        Duration(self.0 - earlier.0)
    }

    /// Saturating difference: zero if `earlier` is after `self`.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl Duration {
    /// The zero-length span.
    pub const ZERO: Duration = Duration(0);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        Duration(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        Duration(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        Duration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        Duration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    ///
    /// Cost models are naturally expressed in seconds (e.g. `bytes /
    /// bytes_per_second`); this is the single bridging point back to integer
    /// time.
    ///
    /// # Panics
    /// Panics if `s` is negative, NaN, or too large for a `u64` of
    /// nanoseconds (≈ 584 simulated years).
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s.is_finite() && s >= 0.0,
            "Duration::from_secs_f64: invalid seconds value {s}"
        );
        let ns = s * 1e9;
        assert!(
            ns < u64::MAX as f64,
            "Duration::from_secs_f64: {s} seconds overflows simulated time"
        );
        Duration(ns.round() as u64)
    }

    /// The raw nanosecond count.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This span expressed in (fractional) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// This span expressed in (fractional) milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Checked scalar multiplication.
    #[inline]
    pub fn checked_mul(self, k: u64) -> Option<Duration> {
        self.0.checked_mul(k).map(Duration)
    }

    /// Saturating scalar multiplication.
    #[inline]
    pub fn saturating_mul(self, k: u64) -> Duration {
        Duration(self.0.saturating_mul(k))
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(
            self.0
                .checked_add(rhs.0)
                .expect("SimTime overflow: simulation ran past u64 nanoseconds"),
        )
    }
}

impl AddAssign<Duration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Add for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, rhs: Duration) -> Duration {
        Duration(
            self.0
                .checked_add(rhs.0)
                .expect("Duration overflow: sum exceeds u64 nanoseconds"),
        )
    }
}

impl AddAssign for Duration {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub for Duration {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Duration) -> Duration {
        Duration(
            self.0
                .checked_sub(rhs.0)
                .expect("Duration underflow: subtrahend larger than minuend"),
        )
    }
}

impl std::iter::Sum for Duration {
    fn sum<I: Iterator<Item = Duration>>(iter: I) -> Duration {
        iter.fold(Duration::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime({}ns)", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        format_ns(self.0, f)
    }
}

impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Duration({}ns)", self.0)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        format_ns(self.0, f)
    }
}

/// Human-readable rendering with an adaptive unit.
fn format_ns(ns: u64, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if ns >= 1_000_000_000 {
        write!(f, "{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        write!(f, "{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        write!(f, "{:.3}us", ns as f64 / 1e3)
    } else {
        write!(f, "{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Duration::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(Duration::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(Duration::from_micros(7).as_nanos(), 7_000);
        assert_eq!(Duration::from_nanos(11).as_nanos(), 11);
    }

    #[test]
    fn float_round_trip() {
        let d = Duration::from_secs_f64(0.033);
        assert_eq!(d.as_nanos(), 33_000_000);
        assert!((d.as_secs_f64() - 0.033).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + Duration::from_micros(10);
        let u = t + Duration::from_micros(5);
        assert_eq!(u.since(t), Duration::from_micros(5));
        assert_eq!(u.saturating_since(t), Duration::from_micros(5));
        assert_eq!(t.saturating_since(u), Duration::ZERO);
        assert_eq!(t.max(u), u);
    }

    #[test]
    #[should_panic(expected = "earlier")]
    fn since_panics_on_backwards_time() {
        let t = SimTime::from_nanos(5);
        let u = SimTime::from_nanos(9);
        let _ = t.since(u);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_nanos(1) < SimTime::from_nanos(2));
        assert!(Duration::from_millis(1) < Duration::from_secs(1));
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", Duration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", Duration::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", Duration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", Duration::from_secs(12)), "12.000s");
    }

    #[test]
    fn sum_and_mul() {
        let total: Duration = [1u64, 2, 3].iter().map(|&n| Duration::from_nanos(n)).sum();
        assert_eq!(total, Duration::from_nanos(6));
        assert_eq!(
            Duration::from_nanos(6).checked_mul(2),
            Some(Duration::from_nanos(12))
        );
        assert_eq!(Duration::from_nanos(u64::MAX).checked_mul(2), None);
    }

    #[test]
    #[should_panic(expected = "invalid seconds")]
    fn from_secs_f64_rejects_negative() {
        let _ = Duration::from_secs_f64(-1.0);
    }
}

//! # df-sim — deterministic discrete-event simulation kernel
//!
//! The 1979 Boral & DeWitt paper evaluated its data-flow database machine
//! designs with a discrete-event simulation of a DIRECT-like multiprocessor.
//! This crate provides the simulation substrate the rest of the workspace is
//! built on:
//!
//! * [`SimTime`] / [`Duration`] — integer-nanosecond simulated time (no
//!   floating-point drift in the event queue),
//! * [`EventQueue`] — a time-ordered queue with deterministic FIFO
//!   tie-breaking, generic over the caller's event payload,
//! * [`Resource`] — an *M*-server FCFS queueing resource with utilization and
//!   queueing statistics (used to model processors, disk arms, ring links),
//! * [`stats`] — counters, time-weighted averages and fixed-bucket histograms,
//! * [`rng`] — a small deterministic RNG wrapper so every simulation is
//!   exactly reproducible from a seed.
//!
//! The kernel is deliberately single-threaded: determinism is a correctness
//! requirement for the reproduction (identical metrics for identical seeds),
//! and the simulated machines extract their parallelism from the *model*, not
//! from host threads.
//!
//! ```
//! use df_sim::{EventQueue, SimTime, Duration};
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.schedule(SimTime::ZERO + Duration::from_micros(5), "b");
//! q.schedule(SimTime::ZERO, "a");
//! let (t, e) = q.pop().unwrap();
//! assert_eq!((t, e), (SimTime::ZERO, "a"));
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

mod event;
mod resource;
mod time;

pub mod rng;
pub mod stats;

pub use event::{EventQueue, ScheduledEvent};
pub use resource::{Resource, ResourceStats};
pub use time::{Duration, SimTime};

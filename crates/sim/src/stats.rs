//! Measurement utilities: byte counters, time-weighted averages, histograms.

use std::fmt;

use crate::time::{Duration, SimTime};

/// A monotone byte/packet counter with a derived average-bandwidth view.
///
/// This is the primitive behind every bandwidth number in the reproduction:
/// the paper's Figure 4.2 reports "total number of bytes transferred divided
/// by the execution time of the benchmark", which is exactly
/// [`ByteCounter::mean_bandwidth_bps`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ByteCounter {
    /// Total bytes recorded.
    pub bytes: u64,
    /// Total transfer operations (packets/pages) recorded.
    pub transfers: u64,
}

impl ByteCounter {
    /// A zeroed counter.
    pub const fn new() -> Self {
        ByteCounter {
            bytes: 0,
            transfers: 0,
        }
    }

    /// Record one transfer of `bytes` bytes.
    #[inline]
    pub fn record(&mut self, bytes: u64) {
        self.bytes += bytes;
        self.transfers += 1;
    }

    /// Merge another counter into this one.
    #[inline]
    pub fn merge(&mut self, other: &ByteCounter) {
        self.bytes += other.bytes;
        self.transfers += other.transfers;
    }

    /// Average bandwidth in bytes/second over `[0, horizon]` (0 if horizon is 0).
    pub fn mean_bandwidth_bps(&self, horizon: SimTime) -> f64 {
        let s = horizon.as_secs_f64();
        if s == 0.0 {
            0.0
        } else {
            self.bytes as f64 / s
        }
    }

    /// Average bandwidth in megabits/second over `[0, horizon]`.
    ///
    /// The paper quotes ring capacities in Mbps (40 Mbps shift-register ring,
    /// 400 Mbps fiber), so Figure 4.2 is reported in the same unit.
    pub fn mean_bandwidth_mbps(&self, horizon: SimTime) -> f64 {
        self.mean_bandwidth_bps(horizon) * 8.0 / 1e6
    }
}

/// A sample-mean accumulator (Welford-free: simple sum/count is adequate for
/// the magnitudes involved and keeps merging trivial).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MeanAccumulator {
    sum: f64,
    count: u64,
    min: f64,
    max: f64,
}

impl MeanAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        MeanAccumulator {
            sum: 0.0,
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, x: f64) {
        self.sum += x;
        self.count += 1;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest sample (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }
}

/// A fixed-boundary histogram of durations, for queueing-delay distributions.
#[derive(Debug, Clone)]
pub struct DurationHistogram {
    /// Upper bounds of each bucket (exclusive), ascending. A final overflow
    /// bucket catches everything larger.
    bounds: Vec<Duration>,
    counts: Vec<u64>,
    total: u64,
}

impl DurationHistogram {
    /// A histogram with the given ascending bucket bounds.
    ///
    /// # Panics
    /// Panics if `bounds` is empty or not strictly ascending.
    pub fn new(bounds: Vec<Duration>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        let n = bounds.len();
        DurationHistogram {
            bounds,
            counts: vec![0; n + 1],
            total: 0,
        }
    }

    /// A default latency histogram: 1µs … 10s in decades.
    pub fn latency_decades() -> Self {
        DurationHistogram::new(vec![
            Duration::from_micros(1),
            Duration::from_micros(10),
            Duration::from_micros(100),
            Duration::from_millis(1),
            Duration::from_millis(10),
            Duration::from_millis(100),
            Duration::from_secs(1),
            Duration::from_secs(10),
        ])
    }

    /// Record one duration sample.
    pub fn record(&mut self, d: Duration) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| d < b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Total samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Bucket counts, one per bound plus the overflow bucket.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// The smallest bound `b` such that at least `q` (0..=1) of samples are < `b`.
    ///
    /// Returns `None` when empty or when the quantile lands in the overflow
    /// bucket (the histogram cannot bound it).
    pub fn quantile_bound(&self, q: f64) -> Option<Duration> {
        if self.total == 0 {
            return None;
        }
        let need = (q * self.total as f64).ceil() as u64;
        let mut acc = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= need {
                return self.bounds.get(i).copied();
            }
        }
        None
    }
}

impl fmt::Display for DurationHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "histogram ({} samples):", self.total)?;
        for (i, &c) in self.counts.iter().enumerate() {
            if i < self.bounds.len() {
                writeln!(f, "  < {:>10}: {c}", format!("{}", self.bounds[i]))?;
            } else {
                writeln!(f, "  >=  (last) : {c}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_counter_bandwidth() {
        let mut c = ByteCounter::new();
        c.record(1_000_000);
        c.record(1_000_000);
        // 2 MB over 2 seconds = 1 MB/s = 8 Mbps.
        let t = SimTime::from_nanos(2_000_000_000);
        assert!((c.mean_bandwidth_bps(t) - 1e6).abs() < 1e-6);
        assert!((c.mean_bandwidth_mbps(t) - 8.0).abs() < 1e-9);
        assert_eq!(c.transfers, 2);
    }

    #[test]
    fn byte_counter_merge_and_zero_horizon() {
        let mut a = ByteCounter::new();
        a.record(10);
        let mut b = ByteCounter::new();
        b.record(32);
        a.merge(&b);
        assert_eq!(a.bytes, 42);
        assert_eq!(a.transfers, 2);
        assert_eq!(a.mean_bandwidth_bps(SimTime::ZERO), 0.0);
    }

    #[test]
    fn mean_accumulator() {
        let mut m = MeanAccumulator::new();
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.min(), None);
        for x in [1.0, 2.0, 3.0] {
            m.record(x);
        }
        assert_eq!(m.count(), 3);
        assert!((m.mean() - 2.0).abs() < 1e-12);
        assert_eq!(m.min(), Some(1.0));
        assert_eq!(m.max(), Some(3.0));
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = DurationHistogram::latency_decades();
        for _ in 0..9 {
            h.record(Duration::from_micros(5)); // < 10us bucket
        }
        h.record(Duration::from_secs(100)); // overflow
        assert_eq!(h.total(), 10);
        assert_eq!(h.quantile_bound(0.9), Some(Duration::from_micros(10)));
        assert_eq!(h.quantile_bound(1.0), None); // lands in overflow
        assert_eq!(*h.counts().last().unwrap(), 1);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn histogram_rejects_bad_bounds() {
        let _ = DurationHistogram::new(vec![Duration::from_nanos(5), Duration::from_nanos(5)]);
    }

    #[test]
    fn histogram_display_renders() {
        let mut h = DurationHistogram::latency_decades();
        h.record(Duration::from_millis(3));
        let s = format!("{h}");
        assert!(s.contains("1 samples") || s.contains("(1 samples)"));
    }
}

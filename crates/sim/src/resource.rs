//! FCFS multi-server queueing resources.
//!
//! A [`Resource`] models a pool of identical servers (processors, disk arms,
//! ring links…). Work is offered as `(arrival_time, service_duration)` and the
//! resource answers "when does this job start and finish?", applying
//! first-come-first-served discipline and tracking utilization statistics.
//!
//! The implementation keeps one "next free at" timestamp per server and
//! always dispatches to the server that frees earliest (ties broken by server
//! index, for determinism). Because the simulated machines offer work in
//! non-decreasing arrival order, this is an exact FCFS M-server queue.

use crate::time::{Duration, SimTime};

/// Aggregate statistics for a [`Resource`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ResourceStats {
    /// Total jobs served.
    pub jobs: u64,
    /// Sum of service durations (busy time across all servers).
    pub busy: Duration,
    /// Sum of queueing delays (start − arrival).
    pub waited: Duration,
    /// Latest completion time observed.
    pub last_completion: SimTime,
}

impl ResourceStats {
    /// Mean utilization across all servers over `[0, horizon]`.
    ///
    /// Returns 0 when the horizon is zero.
    pub fn utilization(&self, servers: usize, horizon: SimTime) -> f64 {
        let h = horizon.as_nanos() as f64 * servers as f64;
        if h == 0.0 {
            0.0
        } else {
            self.busy.as_nanos() as f64 / h
        }
    }

    /// Mean queueing delay per job.
    pub fn mean_wait(&self) -> Duration {
        match self.waited.as_nanos().checked_div(self.jobs) {
            Some(ns) => Duration::from_nanos(ns),
            None => Duration::ZERO,
        }
    }
}

/// An *M*-server first-come-first-served resource.
#[derive(Debug, Clone)]
pub struct Resource {
    /// `free_at[i]` = earliest instant server `i` can start a new job.
    free_at: Vec<SimTime>,
    stats: ResourceStats,
    name: &'static str,
}

impl Resource {
    /// A resource with `servers` identical servers.
    ///
    /// # Panics
    /// Panics if `servers == 0`.
    pub fn new(name: &'static str, servers: usize) -> Self {
        assert!(
            servers > 0,
            "Resource {name:?} must have at least one server"
        );
        Resource {
            free_at: vec![SimTime::ZERO; servers],
            stats: ResourceStats::default(),
            name,
        }
    }

    /// Number of servers.
    #[inline]
    pub fn servers(&self) -> usize {
        self.free_at.len()
    }

    /// The resource's diagnostic name.
    #[inline]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Offer a job arriving at `arrival` needing `service` time.
    ///
    /// Returns `(start, completion)`. The job is immediately committed: the
    /// chosen server is busy until `completion`.
    pub fn submit(&mut self, arrival: SimTime, service: Duration) -> (SimTime, SimTime) {
        // Pick the earliest-free server; ties go to the lowest index.
        let (idx, &free) = self
            .free_at
            .iter()
            .enumerate()
            .min_by_key(|&(i, &t)| (t, i))
            .expect("resource has at least one server");
        let start = arrival.max(free);
        let completion = start + service;
        self.free_at[idx] = completion;

        self.stats.jobs += 1;
        self.stats.busy += service;
        self.stats.waited += start.since(arrival);
        self.stats.last_completion = self.stats.last_completion.max(completion);
        (start, completion)
    }

    /// Earliest instant at which *some* server is free.
    pub fn earliest_free(&self) -> SimTime {
        *self
            .free_at
            .iter()
            .min()
            .expect("resource has at least one server")
    }

    /// Instant at which *all* servers are free (the backlog drains).
    pub fn all_free(&self) -> SimTime {
        *self
            .free_at
            .iter()
            .max()
            .expect("resource has at least one server")
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> &ResourceStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(n: u64) -> SimTime {
        SimTime::from_nanos(n)
    }
    fn dur(n: u64) -> Duration {
        Duration::from_nanos(n)
    }

    #[test]
    fn single_server_fcfs() {
        let mut r = Resource::new("cpu", 1);
        let (s1, c1) = r.submit(ns(0), dur(10));
        assert_eq!((s1, c1), (ns(0), ns(10)));
        // Arrives while busy: queues.
        let (s2, c2) = r.submit(ns(5), dur(10));
        assert_eq!((s2, c2), (ns(10), ns(20)));
        // Arrives after idle period: starts immediately.
        let (s3, c3) = r.submit(ns(50), dur(10));
        assert_eq!((s3, c3), (ns(50), ns(60)));
        assert_eq!(r.stats().jobs, 3);
        assert_eq!(r.stats().busy, dur(30));
        assert_eq!(r.stats().waited, dur(5));
    }

    #[test]
    fn two_servers_run_in_parallel() {
        let mut r = Resource::new("cpu", 2);
        let (_, c1) = r.submit(ns(0), dur(10));
        let (_, c2) = r.submit(ns(0), dur(10));
        assert_eq!(c1, ns(10));
        assert_eq!(c2, ns(10));
        // Third job waits for whichever frees first.
        let (s3, _) = r.submit(ns(0), dur(10));
        assert_eq!(s3, ns(10));
        assert_eq!(r.earliest_free(), ns(10));
        assert_eq!(r.all_free(), ns(20));
    }

    #[test]
    fn utilization_and_mean_wait() {
        let mut r = Resource::new("disk", 1);
        r.submit(ns(0), dur(50));
        r.submit(ns(0), dur(50));
        let st = r.stats().clone();
        assert_eq!(st.last_completion, ns(100));
        assert!((st.utilization(1, ns(100)) - 1.0).abs() < 1e-12);
        assert_eq!(st.mean_wait(), dur(25));
    }

    #[test]
    fn tie_breaking_is_deterministic() {
        let mut a = Resource::new("a", 4);
        let mut b = Resource::new("b", 4);
        for i in 0..100u64 {
            let arr = ns(i * 3);
            let svc = dur(7 + i % 5);
            assert_eq!(a.submit(arr, svc), b.submit(arr, svc));
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_servers_panics() {
        let _ = Resource::new("bad", 0);
    }
}

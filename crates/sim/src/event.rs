//! The event queue: a time-ordered priority queue with FIFO tie-breaking.
//!
//! Determinism contract: events scheduled for the same instant are delivered
//! in the order they were scheduled. This is achieved with a monotonically
//! increasing sequence number as the secondary sort key, so the queue's
//! behaviour never depends on `BinaryHeap`'s unspecified ordering of equal
//! elements.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An event with its delivery time, as returned by [`EventQueue::pop`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub at: SimTime,
    /// Scheduling sequence number (global per queue; earlier = scheduled first).
    pub seq: u64,
    /// The caller's payload.
    pub event: E,
}

/// Internal heap entry — ordered so the `BinaryHeap` max-heap pops the
/// *earliest* (time, seq) first.
struct Entry<E>(ScheduledEvent<E>);

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.0.at == other.0.at && self.0.seq == other.0.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: smallest (at, seq) is the heap maximum.
        (other.0.at, other.0.seq).cmp(&(self.0.at, self.0.seq))
    }
}

/// A deterministic discrete-event queue.
///
/// The queue tracks the current simulated clock: [`EventQueue::pop`] advances
/// the clock to the delivered event's timestamp, and scheduling into the past
/// is rejected (it would make the simulation non-causal).
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: SimTime,
    delivered: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            delivered: 0,
        }
    }

    /// The current simulated clock (the timestamp of the last popped event).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events delivered so far.
    #[inline]
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Schedule `event` for delivery at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the current clock.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "EventQueue::schedule: event at {at} is before current clock {now}",
            now = self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry(ScheduledEvent { at, seq, event }));
    }

    /// Deliver the next event, advancing the clock to its timestamp.
    ///
    /// Returns `None` when the queue is exhausted (the simulation is over).
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Entry(ev) = self.heap.pop()?;
        debug_assert!(ev.at >= self.now, "event queue went backwards in time");
        self.now = ev.at;
        self.delivered += 1;
        Some((ev.at, ev.event))
    }

    /// Peek at the timestamp of the next event without delivering it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.0.at)
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .field("delivered", &self.delivered)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    #[test]
    fn delivers_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), "c");
        q.schedule(SimTime::from_nanos(10), "a");
        q.schedule(SimTime::from_nanos(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn fifo_tie_breaking() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(7)));
        q.pop();
        assert_eq!(q.now(), SimTime::from_nanos(7));
        assert_eq!(q.delivered(), 1);
    }

    #[test]
    #[should_panic(expected = "before current clock")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), ());
        q.pop();
        q.schedule(SimTime::from_nanos(5), ());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), 1);
        let (t, e) = q.pop().unwrap();
        assert_eq!(e, 1);
        // Schedule relative to the new clock.
        q.schedule(t + Duration::from_nanos(5), 2);
        q.schedule(t + Duration::from_nanos(1), 3);
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop().unwrap().1, 2);
        assert!(q.is_empty());
    }
}

//! Deterministic random number generation for simulations and workloads.
//!
//! Every stochastic choice in the workspace flows through [`SimRng`], which is
//! a seeded [`rand::rngs::StdRng`] plus a few convenience draws. Two runs with
//! the same seed produce byte-identical databases, workloads and simulation
//! schedules — a property the integration tests assert.

use rand::distributions::uniform::{SampleRange, SampleUniform};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A deterministic, seedable RNG.
///
/// ```
/// use df_sim::rng::SimRng;
/// let mut a = SimRng::new(42);
/// let mut b = SimRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// // Forked streams are independent of draw order in the parent.
/// let mut disk = a.fork("disk");
/// let _ = disk.gen_range(0..100);
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
    seed: u64,
}

impl SimRng {
    /// Construct from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
            seed,
        }
    }

    /// The seed this RNG was constructed with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derive an independent child RNG for a named subsystem.
    ///
    /// Mixing the label into the seed decouples streams: adding draws in one
    /// subsystem does not perturb another, so experiments stay comparable
    /// across code changes.
    pub fn fork(&self, label: &str) -> SimRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        SimRng::new(self.seed ^ h)
    }

    /// Uniform draw from a range.
    pub fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        self.inner.gen_range(range)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.inner.gen_bool(p.clamp(0.0, 1.0))
    }

    /// A uniform `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        // Hand-rolled to avoid depending on rand::seq's API stability.
        for i in (1..xs.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            xs.swap(i, j);
        }
    }

    /// Pick a uniformly random element (None if empty).
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> Option<&'a T> {
        if xs.is_empty() {
            None
        } else {
            let i = self.inner.gen_range(0..xs.len());
            Some(&xs[i])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams from different seeds should diverge");
    }

    #[test]
    fn fork_is_label_sensitive_and_stable() {
        let root = SimRng::new(7);
        let mut x1 = root.fork("disk");
        let mut x2 = root.fork("disk");
        let mut y = root.fork("ring");
        assert_eq!(x1.next_u64(), x2.next_u64());
        assert_ne!(x1.seed(), y.seed());
        let _ = y.next_u64();
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::new(3);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_handles_empty_and_nonempty() {
        let mut rng = SimRng::new(9);
        let empty: [u8; 0] = [];
        assert_eq!(rng.choose(&empty), None);
        let xs = [10u8, 20, 30];
        assert!(xs.contains(rng.choose(&xs).unwrap()));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SimRng::new(11);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        // Out-of-range p is clamped rather than panicking.
        assert!(rng.gen_bool(2.0));
        assert!(!rng.gen_bool(-1.0));
    }
}

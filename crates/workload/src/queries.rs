//! The ten-query benchmark and helpers for building join-chain queries.

use df_query::{QueryTree, TreeBuilder};
use df_relalg::{Catalog, CmpOp, Result, Value};
use df_sim::rng::SimRng;

use crate::dbgen::{parent_of, DatabaseSpec, FK_ATTR, KEY_ATTR, VAL_ATTR, VAL_DOMAIN};

/// Benchmark configuration: the database spec plus restrict selectivity.
#[derive(Debug, Clone)]
pub struct BenchmarkSpec {
    /// The database the queries run against.
    pub database: DatabaseSpec,
    /// Selectivity of every restrict leaf (fraction of tuples kept).
    pub restrict_selectivity: f64,
}

impl BenchmarkSpec {
    /// Full scale, as in the paper's §3.2 experiment.
    pub fn paper() -> BenchmarkSpec {
        BenchmarkSpec {
            database: DatabaseSpec::paper(),
            restrict_selectivity: 0.5,
        }
    }

    /// Scaled down for tests and Criterion benches.
    pub fn scaled(factor: f64) -> BenchmarkSpec {
        BenchmarkSpec {
            database: DatabaseSpec::scaled(factor),
            restrict_selectivity: 0.5,
        }
    }

    /// The restrict predicate constant: `val < cutoff`.
    pub fn cutoff(&self) -> i64 {
        (self.restrict_selectivity * VAL_DOMAIN as f64).round() as i64
    }
}

/// Build a left-deep join chain query starting at relation `start`:
///
/// `σ(r_start) ⋈ σ(parent) ⋈ σ(parent²) ⋈ …` with `njoins` joins. Each join
/// is `previous.fk = next.key`. `restricts` of the `njoins + 1` leaves get a
/// `val < cutoff` restrict (left to right); the rest are raw scans — this is
/// how Q9's "4 joins and 4 restricts" (5 leaves, one unrestricted) is built.
pub fn chain_query(
    db: &Catalog,
    n_relations: usize,
    start: usize,
    njoins: usize,
    restricts: usize,
    cutoff: i64,
) -> Result<QueryTree> {
    assert!(
        restricts <= njoins + 1,
        "cannot place {restricts} restricts on {} leaves",
        njoins + 1
    );
    let b = TreeBuilder::new(db);
    let make_leaf = |rel_index: usize, restricted: bool| {
        let name = DatabaseSpec::relation_name(rel_index);
        let scan = b.scan(&name)?;
        if restricted {
            scan.restrict_where(VAL_ATTR, CmpOp::Lt, Value::Int(cutoff))
        } else {
            Ok(scan)
        }
    };

    let mut rel = start;
    let mut tree = make_leaf(rel, restricts >= 1)?;
    // After k joins, the newest relation's fk attribute is "r_"*k + "fk".
    let mut fk_attr = FK_ATTR.to_owned();
    for k in 0..njoins {
        rel = parent_of(rel, n_relations);
        let right = make_leaf(rel, restricts >= k + 2)?;
        tree = tree.join_on(right, &fk_attr, CmpOp::Eq, KEY_ATTR)?;
        fk_attr = format!("r_{fk_attr}");
    }
    Ok(tree.finish())
}

/// Like [`chain_query`], but with every restrict stacked *above* the join
/// chain instead of at the leaves — the un-optimized form a naive host
/// front end would ship. `df-opt`'s pushdown turns one into the other;
/// the `abl_optimizer` bench measures the difference on the machine.
pub fn chain_query_naive(
    db: &Catalog,
    n_relations: usize,
    start: usize,
    njoins: usize,
    restricts: usize,
    cutoff: i64,
) -> Result<QueryTree> {
    assert!(
        restricts <= njoins + 1,
        "cannot place {restricts} restricts on {} leaves",
        njoins + 1
    );
    let b = TreeBuilder::new(db);
    let mut rel = start;
    let mut tree = b.scan(&DatabaseSpec::relation_name(rel))?;
    let mut fk_attr = FK_ATTR.to_owned();
    // The k-th joined relation's attributes carry k `r_` prefixes.
    let mut val_attrs = vec![VAL_ATTR.to_owned()];
    for _ in 0..njoins {
        rel = parent_of(rel, n_relations);
        let right = b.scan(&DatabaseSpec::relation_name(rel))?;
        tree = tree.join_on(right, &fk_attr, CmpOp::Eq, KEY_ATTR)?;
        fk_attr = format!("r_{fk_attr}");
        val_attrs.push(format!(
            "r_{}",
            val_attrs.last().expect("non-empty").clone()
        ));
    }
    // Stack the restricts on top, leftmost leaves first.
    for attr in val_attrs.iter().take(restricts) {
        tree = tree.restrict_where(attr, CmpOp::Lt, Value::Int(cutoff))?;
    }
    Ok(tree.finish())
}

/// The paper's ten-query benchmark (§3.2):
///
/// | queries | joins | restricts |
/// |---------|-------|-----------|
/// | 2       | 0     | 1         |
/// | 3       | 1     | 2         |
/// | 2       | 2     | 3         |
/// | 1       | 3     | 4         |
/// | 1       | 4     | 4         |
/// | 1       | 5     | 6         |
///
/// Starting relations are spread over the database so the queries touch
/// different (overlapping) relation subsets, as a multi-user benchmark
/// would.
pub fn benchmark_queries(db: &Catalog, spec: &BenchmarkSpec) -> Result<Vec<QueryTree>> {
    let n = spec.database.relations;
    let cutoff = spec.cutoff();
    // (start relation, joins, restricts) per query.
    let shapes: [(usize, usize, usize); 10] = [
        (0, 0, 1), // Q1: 1 restrict on the largest relation
        (2, 0, 1), // Q2: 1 restrict
        (1, 1, 2), // Q3: 1 join + 2 restricts
        (3, 1, 2), // Q4
        (5, 1, 2), // Q5
        (2, 2, 3), // Q6: 2 joins + 3 restricts
        (6, 2, 3), // Q7
        (4, 3, 4), // Q8: 3 joins + 4 restricts
        (7, 4, 4), // Q9: 4 joins + 4 restricts (one raw scan leaf)
        (8, 5, 6), // Q10: 5 joins + 6 restricts
    ];
    shapes
        .iter()
        .map(|&(start, joins, restricts)| chain_query(db, n, start, joins, restricts, cutoff))
        .collect()
}

/// Like [`chain_query`], but every restricted leaf projects away the
/// 76-byte `pad` filler right after its restrict, and the root carries a
/// final restrict→project pair — so every query holds maximal
/// restrict→project chains below (and above) its joins. This is the
/// workload the materialize-vs-pipeline shoot-out runs: under
/// `TransferMode::Pipeline` each chain fuses into one span and the
/// intermediate pages (pad bytes included) never cross the network.
pub fn pipeline_chain_query(
    db: &Catalog,
    n_relations: usize,
    start: usize,
    njoins: usize,
    restricts: usize,
    cutoff: i64,
) -> Result<QueryTree> {
    assert!(
        restricts <= njoins + 1,
        "cannot place {restricts} restricts on {} leaves",
        njoins + 1
    );
    let b = TreeBuilder::new(db);
    let make_leaf = |rel_index: usize, restricted: bool| {
        let name = DatabaseSpec::relation_name(rel_index);
        let scan = b.scan(&name)?;
        if restricted {
            // restrict → project: the fusible leaf chain.
            scan.restrict_where(VAL_ATTR, CmpOp::Lt, Value::Int(cutoff))?
                .project(&[KEY_ATTR, FK_ATTR, VAL_ATTR], false)
        } else {
            Ok(scan)
        }
    };

    let mut rel = start;
    let mut tree = make_leaf(rel, restricts >= 1)?;
    let mut fk_attr = FK_ATTR.to_owned();
    let mut top_key = KEY_ATTR.to_owned();
    for k in 0..njoins {
        rel = parent_of(rel, n_relations);
        let right = make_leaf(rel, restricts >= k + 2)?;
        tree = tree.join_on(right, &fk_attr, CmpOp::Eq, KEY_ATTR)?;
        fk_attr = format!("r_{fk_attr}");
        top_key = format!("r_{top_key}");
    }
    // The above-join chain: one more (redundant-at-worst) restrict plus a
    // narrowing project, fusible with the leaf chain when njoins == 0.
    tree = tree
        .restrict_where(VAL_ATTR, CmpOp::Lt, Value::Int(cutoff))?
        .project(&[VAL_ATTR, &top_key], false)?;
    Ok(tree.finish())
}

/// The ten-query benchmark in its pipeline-bearing form: the same §3.2
/// shapes as [`benchmark_queries`], rebuilt with [`pipeline_chain_query`]
/// so every query contains restrict→project chains for span fusion to
/// collapse. Answers are oracle-checked like the plain suite; the byte
/// traffic difference between `TransferMode::Materialize` and
/// `TransferMode::Pipeline` on this suite is the PERF-PIPE experiment.
pub fn pipeline_queries(db: &Catalog, spec: &BenchmarkSpec) -> Result<Vec<QueryTree>> {
    let n = spec.database.relations;
    let cutoff = spec.cutoff();
    let shapes: [(usize, usize, usize); 10] = [
        (0, 0, 1),
        (2, 0, 1),
        (1, 1, 2),
        (3, 1, 2),
        (5, 1, 2),
        (2, 2, 3),
        (6, 2, 3),
        (4, 3, 4),
        (7, 4, 4),
        (8, 5, 6),
    ];
    shapes
        .iter()
        .map(|&(start, joins, restricts)| {
            pipeline_chain_query(db, n, start, joins, restricts, cutoff)
        })
        .collect()
}

/// Exponentially distributed arrival times for an open multi-user stream:
/// `n` arrivals with the given mean inter-arrival gap (seconds), starting
/// at t = 0. Deterministic in `rng`. Pairs with
/// `df_ring::run_ring_queries_at` to measure response time vs offered load
/// (requirement 1's "simultaneous execution of multiple queries from
/// several users").
pub fn poisson_arrivals(n: usize, mean_gap_secs: f64, rng: &mut SimRng) -> Vec<df_sim::SimTime> {
    assert!(mean_gap_secs >= 0.0, "mean gap must be non-negative");
    let mut t = 0.0f64;
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        if i > 0 {
            // Inverse-CDF exponential draw; u in (0, 1].
            let u = 1.0 - rng.next_f64();
            t += -mean_gap_secs * u.ln();
        }
        out.push(df_sim::SimTime::from_nanos((t * 1e9) as u64));
    }
    out
}

/// A random chain query (for property tests and extra workloads):
/// uniformly picks a start relation, 0..=max_joins joins, and restricts.
pub fn random_query(
    db: &Catalog,
    n_relations: usize,
    max_joins: usize,
    cutoff: i64,
    rng: &mut SimRng,
) -> Result<QueryTree> {
    let start = rng.gen_range(0..n_relations);
    let njoins = rng.gen_range(0..=max_joins);
    let restricts = rng.gen_range(0..=njoins + 1);
    chain_query(db, n_relations, start, njoins, restricts, cutoff)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbgen::generate_database;
    use df_query::{execute_readonly, validate, ExecParams};

    fn setup() -> (Catalog, BenchmarkSpec) {
        let spec = BenchmarkSpec::scaled(0.02);
        let db = generate_database(&spec.database);
        (db, spec)
    }

    #[test]
    fn benchmark_has_the_paper_mix() {
        let (db, spec) = setup();
        let queries = benchmark_queries(&db, &spec).unwrap();
        assert_eq!(queries.len(), 10);
        let mix: Vec<(usize, usize)> = queries
            .iter()
            .map(|q| (q.count_op("join"), q.count_op("restrict")))
            .collect();
        assert_eq!(
            mix,
            vec![
                (0, 1),
                (0, 1),
                (1, 2),
                (1, 2),
                (1, 2),
                (2, 3),
                (2, 3),
                (3, 4),
                (4, 4),
                (5, 6)
            ]
        );
    }

    #[test]
    fn all_benchmark_queries_validate_and_execute() {
        let (db, spec) = setup();
        for (i, q) in benchmark_queries(&db, &spec).unwrap().iter().enumerate() {
            validate(&db, q).unwrap_or_else(|e| panic!("Q{} invalid: {e}", i + 1));
            let out = execute_readonly(&db, q, &ExecParams::default())
                .unwrap_or_else(|e| panic!("Q{} failed: {e}", i + 1));
            // At 2% scale, each 0.5-selectivity join step halves the rows, so
            // the deepest chains (Q9, Q10) may legitimately drain to zero;
            // shallow queries must not.
            if q.count_op("join") <= 3 {
                assert!(out.num_tuples() > 0, "Q{} produced an empty result", i + 1);
            }
        }
    }

    #[test]
    fn pipeline_queries_validate_and_carry_fusible_chains() {
        let (db, spec) = setup();
        let queries = pipeline_queries(&db, &spec).unwrap();
        assert_eq!(queries.len(), 10);
        for (i, q) in queries.iter().enumerate() {
            validate(&db, q).unwrap_or_else(|e| panic!("PQ{} invalid: {e}", i + 1));
            execute_readonly(&db, q, &ExecParams::default())
                .unwrap_or_else(|e| panic!("PQ{} failed: {e}", i + 1));
            // Every restricted leaf projects, plus the root pair: each
            // query has at least one project per restrict placement.
            assert!(
                q.count_op("project") >= 2,
                "PQ{} has no fusible chain",
                i + 1
            );
        }
        // Same join mix as the paper suite.
        let joins: Vec<usize> = queries.iter().map(|q| q.count_op("join")).collect();
        assert_eq!(joins, vec![0, 0, 1, 1, 1, 2, 2, 3, 4, 5]);
    }

    #[test]
    fn chain_query_join_fanout_is_bounded() {
        // Unrestricted chain: |A ⋈ parent| == |A| (every fk matches one key).
        let (db, _) = setup();
        let q = chain_query(&db, 15, 0, 1, 0, VAL_DOMAIN).unwrap();
        let out = execute_readonly(&db, &q, &ExecParams::default()).unwrap();
        let a = db.get("r00").unwrap().num_tuples();
        assert_eq!(out.num_tuples(), a);
    }

    #[test]
    fn restrict_selectivity_is_roughly_honoured() {
        let (db, spec) = setup();
        let q = chain_query(&db, 15, 0, 0, 1, spec.cutoff()).unwrap();
        let out = execute_readonly(&db, &q, &ExecParams::default()).unwrap();
        let n = db.get("r00").unwrap().num_tuples() as f64;
        let kept = out.num_tuples() as f64;
        assert!(
            (kept / n - 0.5).abs() < 0.1,
            "selectivity {kept}/{n} far from 0.5"
        );
    }

    #[test]
    fn random_queries_always_validate() {
        let (db, spec) = setup();
        let mut rng = SimRng::new(7);
        for _ in 0..25 {
            let q = random_query(&db, 15, 4, spec.cutoff(), &mut rng).unwrap();
            validate(&db, &q).unwrap();
        }
    }

    #[test]
    fn poisson_arrivals_are_ordered_and_calibrated() {
        let mut rng = SimRng::new(5);
        let arrivals = poisson_arrivals(2000, 0.1, &mut rng);
        assert_eq!(arrivals[0], df_sim::SimTime::ZERO);
        assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
        // Mean gap within 10% of the target.
        let total = arrivals.last().unwrap().as_secs_f64();
        let mean = total / (arrivals.len() - 1) as f64;
        assert!((mean - 0.1).abs() < 0.01, "mean gap {mean}");
        // Deterministic.
        let mut rng2 = SimRng::new(5);
        assert_eq!(arrivals, poisson_arrivals(2000, 0.1, &mut rng2));
    }

    #[test]
    fn naive_and_leaf_restricted_chains_agree() {
        let (db, spec) = setup();
        let a = chain_query(&db, 15, 3, 2, 3, spec.cutoff()).unwrap();
        let b = chain_query_naive(&db, 15, 3, 2, 3, spec.cutoff()).unwrap();
        let ra = execute_readonly(&db, &a, &ExecParams::default()).unwrap();
        let rb = execute_readonly(&db, &b, &ExecParams::default()).unwrap();
        assert!(ra.same_contents(&rb));
        // Shape differs: naive restricts sit above the joins.
        assert_eq!(b.node(b.root()).op.name(), "restrict");
    }

    #[test]
    #[should_panic(expected = "cannot place")]
    fn too_many_restricts_panics() {
        let (db, _) = setup();
        let _ = chain_query(&db, 15, 0, 1, 3, 500);
    }
}

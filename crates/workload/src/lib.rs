//! # df-workload — synthetic database and the ten-query benchmark
//!
//! The paper evaluated its granularity strategies with:
//!
//! > "a benchmark containing ten queries (2 queries with 1 restrict operator
//! > only, 3 queries with 1 join and 2 restricts each, 2 queries with 2
//! > joins and 3 restricts each, 1 query with 3 joins and 4 restricts, 1
//! > query with 4 joins and 4 restricts, and 1 query with 5 joins and 6
//! > restricts), a relational database containing 15 relations with a
//! > combined size of 5.5 megabytes"  (§3.2)
//!
//! The database itself was never published, so [`generate_database`]
//! synthesizes one honouring every stated constraint (15 relations, 5.5 MB,
//! ~100-byte tuples as in the §3.3 analysis), with foreign keys arranged in
//! a ring so join chains of any length ≤ 15 exist, and a uniform `val`
//! attribute giving restricts a dial-a-selectivity predicate.
//!
//! [`benchmark_queries`] builds the exact ten-query mix;
//! [`BenchmarkSpec::paper`] is full scale, [`BenchmarkSpec::scaled`] shrinks
//! the database for unit tests and Criterion runs.

#![warn(missing_docs)]
#![warn(clippy::all)]

mod dbgen;
mod queries;

pub use dbgen::{
    generate_database, parent_of, DatabaseSpec, FK_ATTR, KEY_ATTR, VAL_ATTR, VAL_DOMAIN,
};
pub use queries::{
    benchmark_queries, chain_query, chain_query_naive, pipeline_chain_query, pipeline_queries,
    poisson_arrivals, random_query, BenchmarkSpec,
};

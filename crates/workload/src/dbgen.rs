//! Synthetic database generation.
//!
//! Every relation has the same four-attribute schema totalling 100 bytes —
//! the tuple size the paper's §3.3 bandwidth analysis assumes:
//!
//! | attribute | type      | bytes | contents                                  |
//! |-----------|-----------|-------|-------------------------------------------|
//! | `key`     | int       | 8     | unique 0..n, shuffled                     |
//! | `fk`      | int       | 8     | uniform over the *parent* relation's keys |
//! | `val`     | int       | 8     | uniform 0..[`VAL_DOMAIN`]                 |
//! | `pad`     | str(76)   | 76    | filler                                    |
//!
//! Parents form a ring (`parent_of(i) = (i+1) % n`), so the equi-join
//! `child.fk = parent.key` matches every child tuple against exactly one
//! parent tuple: join chains neither explode nor die out, which keeps the
//! benchmark's intermediate sizes stable and comparable across runs.

use df_relalg::{Catalog, DataType, Relation, Schema, Tuple, Value};
use df_sim::rng::SimRng;

/// Name of the unique-key attribute.
pub const KEY_ATTR: &str = "key";
/// Name of the foreign-key attribute (references the parent's `key`).
pub const FK_ATTR: &str = "fk";
/// Name of the uniform value attribute used by selectivity predicates.
pub const VAL_ATTR: &str = "val";
/// `val` is uniform in `0..VAL_DOMAIN`; `val < s·VAL_DOMAIN` has
/// selectivity `s`.
pub const VAL_DOMAIN: i64 = 1000;

/// The parent of relation `i` in the foreign-key ring of `n` relations.
pub fn parent_of(i: usize, n: usize) -> usize {
    (i + 1) % n
}

/// Parameters of the synthetic database.
#[derive(Debug, Clone)]
pub struct DatabaseSpec {
    /// Number of relations (paper: 15).
    pub relations: usize,
    /// Target combined size in bytes (paper: 5.5 MB).
    pub total_bytes: usize,
    /// Page size in bytes, header included (paper §3.3 reasons with
    /// 1000-byte pages of ten 100-byte tuples; with our explicit 16-byte
    /// header that is a 1016-byte page).
    pub page_size: usize,
    /// RNG seed — the entire database is a pure function of the spec.
    pub seed: u64,
}

impl DatabaseSpec {
    /// The paper's database: 15 relations, 5.5 MB combined.
    pub fn paper() -> DatabaseSpec {
        DatabaseSpec {
            relations: 15,
            total_bytes: 5_500_000,
            page_size: 1016,
            seed: 0x1979_d1f0,
        }
    }

    /// The paper's database scaled by `factor` (for tests and benches).
    pub fn scaled(factor: f64) -> DatabaseSpec {
        let mut s = DatabaseSpec::paper();
        s.total_bytes = ((s.total_bytes as f64 * factor) as usize).max(s.relations * 1000);
        s
    }

    /// The fixed 100-byte tuple schema shared by all generated relations.
    pub fn schema() -> Schema {
        Schema::build()
            .attr(KEY_ATTR, DataType::Int)
            .attr(FK_ATTR, DataType::Int)
            .attr(VAL_ATTR, DataType::Int)
            .attr("pad", DataType::Str(76))
            .finish()
            .expect("static schema is valid")
    }

    /// Relation-size weights: a mix of large, medium, and small relations
    /// (the paper does not give per-relation sizes; a skewed mix is the
    /// realistic choice and exercises the cache harder than equal sizes).
    fn weights(&self) -> Vec<usize> {
        const BASE: [usize; 15] = [10, 8, 6, 5, 4, 4, 3, 3, 2, 2, 2, 2, 2, 1, 1];
        (0..self.relations).map(|i| BASE[i % BASE.len()]).collect()
    }

    /// Number of tuples for each relation.
    pub fn tuple_counts(&self) -> Vec<usize> {
        let weights = self.weights();
        let total_weight: usize = weights.iter().sum();
        let schema = Self::schema();
        let total_tuples = self.total_bytes / schema.tuple_width();
        weights
            .iter()
            .map(|w| (total_tuples * w / total_weight).max(1))
            .collect()
    }

    /// The generated name of relation `i`.
    pub fn relation_name(i: usize) -> String {
        format!("r{i:02}")
    }
}

/// Generate the database described by `spec`. Deterministic in the spec.
pub fn generate_database(spec: &DatabaseSpec) -> Catalog {
    let root = SimRng::new(spec.seed);
    let schema = DatabaseSpec::schema();
    let counts = spec.tuple_counts();
    let mut db = Catalog::new();

    for (i, &n) in counts.iter().enumerate() {
        let mut rng = root.fork(&format!("rel{i}"));
        let parent_n = counts[parent_of(i, spec.relations)];
        // Unique keys 0..n in shuffled order (real tables are not sorted).
        let mut keys: Vec<i64> = (0..n as i64).collect();
        rng.shuffle(&mut keys);

        let name = DatabaseSpec::relation_name(i);
        let tuples = keys.into_iter().map(|key| {
            let fk = rng.gen_range(0..parent_n as i64);
            let val = rng.gen_range(0..VAL_DOMAIN);
            Tuple::new(vec![
                Value::Int(key),
                Value::Int(fk),
                Value::Int(val),
                Value::Str(format!("pad-{name}-{key}")),
            ])
        });
        let rel = Relation::from_tuples(&name, schema.clone(), spec.page_size, tuples)
            .expect("generated tuples conform to the static schema");
        db.insert(rel).expect("generated names are unique");
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_spec_matches_stated_constraints() {
        let spec = DatabaseSpec::paper();
        let db = generate_database(&spec);
        assert_eq!(db.len(), 15);
        // Combined size within 2% of 5.5 MB (integer division slack).
        let bytes = db.total_bytes() as f64;
        assert!(
            (bytes - 5.5e6).abs() / 5.5e6 < 0.02,
            "database is {bytes} bytes"
        );
        // 100-byte tuples.
        assert_eq!(DatabaseSpec::schema().tuple_width(), 100);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate_database(&DatabaseSpec::scaled(0.02));
        let b = generate_database(&DatabaseSpec::scaled(0.02));
        assert_eq!(a, b);
        let mut other = DatabaseSpec::scaled(0.02);
        other.seed ^= 1;
        let c = generate_database(&other);
        assert_ne!(a, c);
    }

    #[test]
    fn keys_are_unique_per_relation() {
        let db = generate_database(&DatabaseSpec::scaled(0.02));
        for rel in db.iter() {
            let mut keys: Vec<i64> = rel
                .tuples()
                .map(|t| match t.get(0).unwrap() {
                    Value::Int(k) => *k,
                    _ => unreachable!(),
                })
                .collect();
            keys.sort_unstable();
            let n = keys.len();
            keys.dedup();
            assert_eq!(keys.len(), n, "duplicate keys in {}", rel.name());
            assert_eq!(keys, (0..n as i64).collect::<Vec<_>>());
        }
    }

    #[test]
    fn fks_reference_parent_key_domain() {
        let spec = DatabaseSpec::scaled(0.02);
        let db = generate_database(&spec);
        let counts = spec.tuple_counts();
        for i in 0..spec.relations {
            let rel = db.get(&DatabaseSpec::relation_name(i)).unwrap();
            let parent_n = counts[parent_of(i, spec.relations)] as i64;
            for t in rel.tuples() {
                match t.get(1).unwrap() {
                    Value::Int(fk) => assert!((0..parent_n).contains(fk)),
                    _ => unreachable!(),
                }
            }
        }
    }

    #[test]
    fn size_skew_exists() {
        let spec = DatabaseSpec::paper();
        let counts = spec.tuple_counts();
        let max = counts.iter().max().unwrap();
        let min = counts.iter().min().unwrap();
        assert!(max >= &(min * 5), "sizes should be skewed: {counts:?}");
    }

    #[test]
    fn parent_ring_covers_all_relations() {
        let mut seen = [false; 15];
        let mut i = 0;
        for _ in 0..15 {
            seen[i] = true;
            i = parent_of(i, 15);
        }
        assert!(seen.iter().all(|&s| s));
    }
}

//! An interactive query shell over the whole stack: type s-expression
//! queries against the generated database and run them on your choice of
//! engine, with optional optimization.
//!
//! The command language (`:engine`, `:optimize`, `:relations`, …) is the
//! shared shell grammar from [`df_serve::ReplCommand`], so this local
//! REPL and the remote `serve_client` accept the same input.
//!
//! ```sh
//! cargo run --release -p df-bench --example repl
//! ```
//!
//! ```text
//! df> :relations
//! df> (restrict (scan r00) (< val 100))
//! df> :engine ring
//! df> :optimize on
//! df> (restrict (join (scan r01) (scan r02) (= fk key)) (< val 300))
//! df> :quit
//! ```

use std::io::{BufRead, Write};

use df_core::{run_query, Granularity, MachineParams};
use df_opt::{optimize, CatalogStats};
use df_query::{execute_readonly, parse_query, render_tree, ExecParams};
use df_ring::{run_ring_queries, RingParams};
use df_serve::{format_stats, ReplCommand};
use df_workload::{generate_database, DatabaseSpec};

#[derive(Clone, Copy, PartialEq)]
enum Engine {
    Oracle,
    Relation,
    Page,
    Tuple,
    Ring,
}

impl Engine {
    fn name(self) -> &'static str {
        match self {
            Engine::Oracle => "oracle",
            Engine::Relation => "relation",
            Engine::Page => "page",
            Engine::Tuple => "tuple",
            Engine::Ring => "ring",
        }
    }
}

/// Local session counters, shown by `:stats` through the same
/// `format_stats` renderer the serve client uses.
#[derive(Default)]
struct SessionStats {
    submitted: u64,
    executed: u64,
    failed: u64,
    parses: u64,
    optimized: u64,
    result_tuples: u64,
}

impl SessionStats {
    fn rows(&self) -> Vec<(String, u64)> {
        [
            ("submitted", self.submitted),
            ("executed", self.executed),
            ("failed", self.failed),
            ("parses", self.parses),
            ("optimizer_runs", self.optimized),
            ("result_tuples", self.result_tuples),
        ]
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect()
    }
}

fn main() {
    let db = generate_database(&DatabaseSpec::scaled(0.05));
    let stats = CatalogStats::gather(&db);
    let mut engine = Engine::Page;
    let mut optimizing = false;
    let mut session = SessionStats::default();

    println!(
        "dataflow-dbm shell — {} relations, {} KB. :help for commands.",
        db.len(),
        db.total_bytes() / 1024
    );
    let stdin = std::io::stdin();
    loop {
        print!("df> ");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break; // EOF
        }
        let command = match ReplCommand::parse(&line) {
            Ok(c) => c,
            Err(e) => {
                println!("{e}");
                continue;
            }
        };
        let query = match command {
            ReplCommand::Empty => continue,
            ReplCommand::Quit => break,
            ReplCommand::Help => {
                println!(
                    ":engine oracle|relation|page|tuple|ring   select execution engine\n\
                     :optimize on|off                          run df-opt first\n\
                     :relations                                list relations\n\
                     :stats                                    session counters\n\
                     :quit                                     exit\n\
                     anything else is parsed as a query, e.g.\n\
                     (restrict (scan r00) (< val 100))"
                );
                continue;
            }
            ReplCommand::Relations => {
                for r in db.iter() {
                    println!("  {r}");
                }
                continue;
            }
            ReplCommand::Stats => {
                println!("{}", format_stats(&session.rows()));
                continue;
            }
            ReplCommand::Priority(_) => {
                println!("`:priority` is for the serve client; this shell has no queueing");
                continue;
            }
            ReplCommand::Install(..) | ReplCommand::Drop(_) | ReplCommand::View(_) => {
                println!("standing views live in the serve engine; use the serve client");
                continue;
            }
            ReplCommand::Optimize(on) => {
                optimizing = on;
                println!("optimizer {}", if on { "on" } else { "off" });
                continue;
            }
            ReplCommand::Engine(name) => {
                engine = match name.as_str() {
                    "oracle" => Engine::Oracle,
                    "relation" => Engine::Relation,
                    "page" => Engine::Page,
                    "tuple" => Engine::Tuple,
                    "ring" => Engine::Ring,
                    other => {
                        println!("unknown engine `{other}`");
                        continue;
                    }
                };
                println!("engine = {}", engine.name());
                continue;
            }
            ReplCommand::Query(text) => text,
        };

        session.submitted += 1;
        session.parses += 1;
        let tree = match parse_query(&db, &query) {
            Ok(t) => t,
            Err(e) => {
                println!("parse error: {e}");
                session.failed += 1;
                continue;
            }
        };
        let tree = if optimizing {
            match optimize(&db, &tree, &stats) {
                Ok(o) => {
                    session.optimized += 1;
                    if !o.applied.is_empty() {
                        println!("optimizer applied: {:?}", o.applied);
                    }
                    o.tree
                }
                Err(e) => {
                    println!("optimizer error: {e}");
                    session.failed += 1;
                    continue;
                }
            }
        } else {
            tree
        };
        println!("{}", render_tree(&tree));

        let result = match engine {
            Engine::Oracle => execute_readonly(&db, &tree, &ExecParams::default())
                .map(|r| (r, String::from("(sequential oracle)"))),
            Engine::Relation | Engine::Page | Engine::Tuple => {
                let g = match engine {
                    Engine::Relation => Granularity::Relation,
                    Engine::Tuple => Granularity::Tuple,
                    _ => Granularity::Page,
                };
                run_query(&db, &tree, &MachineParams::with_processors(16), g).map(|(r, m)| {
                    (
                        r,
                        format!(
                            "(simulated {} on 16 processors, {g} granularity, arb {:.2} Mbps)",
                            m.elapsed,
                            m.arbitration_mbps()
                        ),
                    )
                })
            }
            Engine::Ring => run_ring_queries(
                &db,
                std::slice::from_ref(&tree),
                &RingParams::with_pools(4, 12),
            )
            .map(|mut out| {
                let r = out.results.remove(0);
                let note = format!(
                    "(ring machine, simulated {}, outer ring {:.2} Mbps, {} broadcasts)",
                    out.metrics.elapsed,
                    out.metrics.outer_ring_mbps(),
                    out.metrics.broadcasts
                );
                (r, note)
            }),
        };
        match result {
            Ok((rel, note)) => {
                session.executed += 1;
                session.result_tuples += rel.num_tuples() as u64;
                println!("{} tuples {note}", rel.num_tuples());
                for t in rel.tuples().take(10) {
                    println!("  {t}");
                }
                if rel.num_tuples() > 10 {
                    println!("  ... and {} more", rel.num_tuples() - 10);
                }
            }
            Err(e) => {
                session.failed += 1;
                println!("execution error: {e}");
            }
        }
    }
    println!("bye");
}

//! An interactive query shell over the whole stack: type s-expression
//! queries against the generated database and run them on your choice of
//! engine, with optional optimization.
//!
//! ```sh
//! cargo run --release -p df-bench --example repl
//! ```
//!
//! ```text
//! df> :relations
//! df> (restrict (scan r00) (< val 100))
//! df> :engine ring
//! df> :optimize on
//! df> (restrict (join (scan r01) (scan r02) (= fk key)) (< val 300))
//! df> :quit
//! ```

use std::io::{BufRead, Write};

use df_core::{run_query, Granularity, MachineParams};
use df_opt::{optimize, CatalogStats};
use df_query::{execute_readonly, parse_query, render_tree, ExecParams};
use df_ring::{run_ring_queries, RingParams};
use df_workload::{generate_database, DatabaseSpec};

#[derive(Clone, Copy, PartialEq)]
enum Engine {
    Oracle,
    Relation,
    Page,
    Tuple,
    Ring,
}

impl Engine {
    fn name(self) -> &'static str {
        match self {
            Engine::Oracle => "oracle",
            Engine::Relation => "relation",
            Engine::Page => "page",
            Engine::Tuple => "tuple",
            Engine::Ring => "ring",
        }
    }
}

fn main() {
    let db = generate_database(&DatabaseSpec::scaled(0.05));
    let stats = CatalogStats::gather(&db);
    let mut engine = Engine::Page;
    let mut optimizing = false;

    println!(
        "dataflow-dbm shell — {} relations, {} KB. :help for commands.",
        db.len(),
        db.total_bytes() / 1024
    );
    let stdin = std::io::stdin();
    loop {
        print!("df> ");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break; // EOF
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match line {
            ":quit" | ":q" => break,
            ":help" => {
                println!(
                    ":engine oracle|relation|page|tuple|ring   select execution engine\n\
                     :optimize on|off                          run df-opt first\n\
                     :relations                                list relations\n\
                     :quit                                     exit\n\
                     anything else is parsed as a query, e.g.\n\
                     (restrict (scan r00) (< val 100))"
                );
                continue;
            }
            ":relations" => {
                for r in db.iter() {
                    println!("  {r}");
                }
                continue;
            }
            ":optimize on" => {
                optimizing = true;
                println!("optimizer on");
                continue;
            }
            ":optimize off" => {
                optimizing = false;
                println!("optimizer off");
                continue;
            }
            _ => {}
        }
        if let Some(rest) = line.strip_prefix(":engine ") {
            engine = match rest.trim() {
                "oracle" => Engine::Oracle,
                "relation" => Engine::Relation,
                "page" => Engine::Page,
                "tuple" => Engine::Tuple,
                "ring" => Engine::Ring,
                other => {
                    println!("unknown engine `{other}`");
                    continue;
                }
            };
            println!("engine = {}", engine.name());
            continue;
        }

        // A query.
        let tree = match parse_query(&db, line) {
            Ok(t) => t,
            Err(e) => {
                println!("parse error: {e}");
                continue;
            }
        };
        let tree = if optimizing {
            match optimize(&db, &tree, &stats) {
                Ok(o) => {
                    if !o.applied.is_empty() {
                        println!("optimizer applied: {:?}", o.applied);
                    }
                    o.tree
                }
                Err(e) => {
                    println!("optimizer error: {e}");
                    continue;
                }
            }
        } else {
            tree
        };
        println!("{}", render_tree(&tree));

        let result = match engine {
            Engine::Oracle => execute_readonly(&db, &tree, &ExecParams::default())
                .map(|r| (r, String::from("(sequential oracle)"))),
            Engine::Relation | Engine::Page | Engine::Tuple => {
                let g = match engine {
                    Engine::Relation => Granularity::Relation,
                    Engine::Tuple => Granularity::Tuple,
                    _ => Granularity::Page,
                };
                run_query(&db, &tree, &MachineParams::with_processors(16), g).map(|(r, m)| {
                    (
                        r,
                        format!(
                            "(simulated {} on 16 processors, {g} granularity, arb {:.2} Mbps)",
                            m.elapsed,
                            m.arbitration_mbps()
                        ),
                    )
                })
            }
            Engine::Ring => run_ring_queries(
                &db,
                std::slice::from_ref(&tree),
                &RingParams::with_pools(4, 12),
            )
            .map(|mut out| {
                let r = out.results.remove(0);
                let note = format!(
                    "(ring machine, simulated {}, outer ring {:.2} Mbps, {} broadcasts)",
                    out.metrics.elapsed,
                    out.metrics.outer_ring_mbps(),
                    out.metrics.broadcasts
                );
                (r, note)
            }),
        };
        match result {
            Ok((rel, note)) => {
                println!("{} tuples {note}", rel.num_tuples());
                for t in rel.tuples().take(10) {
                    println!("  {t}");
                }
                if rel.num_tuples() > 10 {
                    println!("  ... and {} more", rel.num_tuples() - 10);
                }
            }
            Err(e) => println!("execution error: {e}"),
        }
    }
    println!("bye");
}

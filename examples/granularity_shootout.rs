//! Granularity shootout: a miniature Figure 3.1.
//!
//! Runs the paper's ten-query benchmark at reduced scale under all three
//! operand granularities across a processor sweep, printing execution time,
//! network traffic, and disk traffic for each. The full-scale version is
//! `cargo run --release -p df-bench --bin experiments -- fig3_1`.
//!
//! ```sh
//! cargo run --release -p df-bench --example granularity_shootout
//! ```

use df_core::{run_queries, AllocationStrategy, Granularity, MachineParams};
use df_workload::{benchmark_queries, generate_database, BenchmarkSpec};

fn main() {
    let spec = BenchmarkSpec::scaled(0.1); // 550 KB database
    let db = generate_database(&spec.database);
    let queries = benchmark_queries(&db, &spec).expect("benchmark builds");
    println!(
        "database: {} relations, {} KB; benchmark: {} queries\n",
        db.len(),
        db.total_bytes() / 1024,
        queries.len()
    );
    println!(
        "{:>6} {:>10} {:>12} {:>12} {:>12} {:>10}",
        "procs", "granular.", "elapsed", "arb net", "disk", "util"
    );

    for processors in [4usize, 8, 16, 32] {
        let mut params = MachineParams::with_processors(processors);
        params.cache.frames = 128; // ~1/4 of the database: real pressure
        let mut elapsed = std::collections::HashMap::new();
        for granularity in Granularity::ALL {
            let out = run_queries(
                &db,
                &queries,
                &params,
                granularity,
                AllocationStrategy::default(),
            )
            .expect("benchmark runs");
            let m = &out.metrics;
            elapsed.insert(granularity, m.elapsed.as_secs_f64());
            println!(
                "{:>6} {:>10} {:>11.3}s {:>9} KB {:>9} KB {:>9.1}%",
                processors,
                granularity.to_string(),
                m.elapsed.as_secs_f64(),
                m.arbitration.bytes / 1024,
                (m.disk_read.bytes + m.disk_write.bytes) / 1024,
                m.processor_utilization() * 100.0
            );
        }
        println!(
            "        relation/page ratio: {:.2}x (paper Figure 3.1: ~2x)\n",
            elapsed[&Granularity::Relation] / elapsed[&Granularity::Page]
        );
    }

    // Visualize the pipelining difference on one deep query (Q10): under
    // page-level granularity the join bars overlap their producers; under
    // relation-level each stage waits for the previous to finish.
    let deep = &queries[9..10];
    let mut params = MachineParams::with_processors(16);
    params.cache.frames = 128;
    for granularity in [Granularity::Relation, Granularity::Page] {
        let out = run_queries(
            &db,
            deep,
            &params,
            granularity,
            AllocationStrategy::default(),
        )
        .expect("Q10 runs");
        println!(
            "Q10 instruction timeline, {granularity} granularity ({}):",
            out.metrics.elapsed
        );
        print!("{}", out.metrics.render_timeline(60));
        println!();
    }
}

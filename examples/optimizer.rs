//! The query optimizer at work: take a naive query (all restricts stacked
//! on top of a join chain, as a simple host front end would ship it), show
//! the rewritten tree, and compare both on the data-flow machine.
//!
//! ```sh
//! cargo run --release -p df-bench --example optimizer
//! ```

use df_core::{run_query, Granularity, MachineParams};
use df_opt::{estimate, optimize, CatalogStats};
use df_query::render_tree;
use df_workload::{chain_query_naive, generate_database, DatabaseSpec};

fn main() {
    let db = generate_database(&DatabaseSpec::scaled(0.1));
    let stats = CatalogStats::gather(&db);

    // Two joins, three restricts — all sitting uselessly above the joins.
    let naive = chain_query_naive(&db, 15, 2, 2, 3, 400).expect("query builds");
    println!(
        "naive tree (restricts above the joins):\n{}",
        render_tree(&naive)
    );

    let optimized = optimize(&db, &naive, &stats).expect("optimizes");
    println!("rules applied: {:?}\n", optimized.applied);
    println!("optimized tree:\n{}", render_tree(&optimized.tree));

    // Cardinality estimates before/after.
    let est_naive = estimate(&db, &naive, &stats).expect("estimates");
    let est_opt = estimate(&db, &optimized.tree, &stats).expect("estimates");
    let sum = |t: &df_query::QueryTree, e: &df_opt::NodeEstimates| -> f64 {
        t.topo_order().map(|id| e.rows(id)).sum()
    };
    println!(
        "estimated intermediate rows: naive {:.0}, optimized {:.0}",
        sum(&naive, &est_naive),
        sum(&optimized.tree, &est_opt)
    );

    // Run both on the simulated machine.
    let params = MachineParams::with_processors(16);
    let (r1, m1) = run_query(&db, &naive, &params, Granularity::Page).expect("naive runs");
    let (r2, m2) =
        run_query(&db, &optimized.tree, &params, Granularity::Page).expect("optimized runs");
    assert!(r1.same_contents(&r2), "optimizer must preserve results");
    println!(
        "\nmachine (16 processors, page granularity):\n\
         naive    : {} in simulated time, {} KB over the arbitration net\n\
         optimized: {} in simulated time, {} KB over the arbitration net\n\
         speedup  : {:.2}x, traffic cut {:.1}x",
        m1.elapsed,
        m1.arbitration.bytes / 1024,
        m2.elapsed,
        m2.arbitration.bytes / 1024,
        m1.elapsed.as_secs_f64() / m2.elapsed.as_secs_f64(),
        m1.arbitration.bytes as f64 / m2.arbitration.bytes as f64,
    );
    println!("both plans returned {} tuples", r1.num_tuples());
}

//! Multi-user execution with concurrency control (requirement 1, §4.0).
//!
//! Several users submit queries simultaneously — readers, plus writers that
//! append to and delete from shared relations. The MC admits compatible
//! queries together and holds conflicting ones back; the example shows the
//! admission decisions and the final database state.
//!
//! ```sh
//! cargo run --release -p df-bench --example multiuser
//! ```

use df_query::parse_query;
use df_ring::{run_ring_queries_at, RingParams};
use df_sim::SimTime;
use df_workload::{generate_database, DatabaseSpec};

fn main() {
    let mut db = generate_database(&DatabaseSpec::scaled(0.03));
    let before_r05 = db.get("r05").unwrap().num_tuples();
    let before_r07 = db.get("r07").unwrap().num_tuples();

    // Five users: two writers on r05/r07, three readers (one of which
    // conflicts with the delete on r05).
    let texts = [
        "(delete r05 (< val 300))",                       // writer on r05
        "(restrict (scan r05) (>= val 300))",             // reader on r05 (conflicts!)
        "(join (scan r01) (scan r02) (= fk key))",        // independent reader
        "(append (restrict (scan r07) (< val 100)) r07)", // writer on r07
        "(restrict (scan r09) (> val 800))",              // independent reader
    ];
    let queries: Vec<_> = texts
        .iter()
        .map(|t| parse_query(&db, t).expect("query parses"))
        .collect();

    // Users arrive over the first half second.
    let arrivals = [
        SimTime::ZERO,
        SimTime::from_nanos(20_000_000),
        SimTime::from_nanos(60_000_000),
        SimTime::from_nanos(150_000_000),
        SimTime::from_nanos(500_000_000),
    ];
    let params = RingParams::with_pools(4, 8);
    let out = run_ring_queries_at(&db, &queries, &arrivals, &params).expect("batch runs");

    println!("five users, staggered arrivals:");
    let responses = out.metrics.response_times();
    for (i, t) in texts.iter().enumerate() {
        println!(
            "  Q{} [arrived {}, response {}, {} tuples]: {}",
            i + 1,
            arrivals[i],
            responses[i],
            out.results[i].num_tuples(),
            t.split_whitespace().collect::<Vec<_>>().join(" ")
        );
    }
    println!(
        "\nconcurrency control delayed {} conflicting quer{} at admission",
        out.metrics.queries_delayed_by_cc,
        if out.metrics.queries_delayed_by_cc == 1 {
            "y"
        } else {
            "ies"
        }
    );

    out.apply_updates(&mut db).expect("updates apply");
    println!(
        "r05: {} -> {} tuples (delete), r07: {} -> {} tuples (append)",
        before_r05,
        db.get("r05").unwrap().num_tuples(),
        before_r07,
        db.get("r07").unwrap().num_tuples()
    );

    // Serializability check: the reader on r05 ran either entirely before
    // or entirely after the delete, never against a half-deleted relation.
    let reader_count = out.results[1].num_tuples();
    let full = db.get("r05").unwrap().num_tuples(); // = survivors (val >= 300)
    assert!(
        reader_count == full || reader_count >= full,
        "reader saw a non-serializable state"
    );
    println!("\nreader on r05 saw {reader_count} tuples — a serializable snapshot");
}

//! A guided tour of the §4 ring machine on a single join query, showing the
//! distributed protocol at work: IP allocation, the inner-page broadcast
//! stream with the "ignore requests received soon afterwards" rule, missed
//! pages and IRC catch-up under tiny IP memories, and the §5 direct IP→IP
//! routing extension.
//!
//! ```sh
//! cargo run --release -p df-bench --example ring_machine
//! ```

use df_query::{execute_readonly, parse_query, ExecParams};
use df_ring::{run_ring_queries, RingParams};
use df_workload::{generate_database, DatabaseSpec};

fn main() {
    let db = generate_database(&DatabaseSpec::scaled(0.05));
    let query_text = "(join (restrict (scan r01) (< val 500))
                            (restrict (scan r02) (< val 500))
                            (= fk key))";
    let query = parse_query(&db, query_text).expect("query parses");
    let oracle = execute_readonly(&db, &query, &ExecParams::default()).expect("oracle");
    println!(
        "query: {query_text}\noracle: {} tuples\n",
        oracle.num_tuples()
    );

    // Baseline configuration.
    let base = RingParams::with_pools(4, 10);

    // (a) Comfortable IP memories: no missed broadcasts.
    let mut roomy = base.clone();
    roomy.ip_memory_pages = 16;
    let out = run_ring_queries(&db, std::slice::from_ref(&query), &roomy).expect("run");
    assert!(out.results[0].same_contents(&oracle));
    println!("roomy IP memory (16 pages):\n{}", out.metrics);

    // (b) Two-page IP memories: broadcasts get missed and the IRC catch-up
    //     protocol kicks in.
    let mut tight = base.clone();
    tight.ip_memory_pages = 2;
    let out = run_ring_queries(&db, std::slice::from_ref(&query), &tight).expect("run");
    assert!(out.results[0].same_contents(&oracle));
    println!("tight IP memory (2 pages):\n{}", out.metrics);

    // (c) §5 direct routing: producer IPs park full result pages locally and
    //     ship them IP→IP at consumption time, halving store-and-forward
    //     traffic on the outer ring.
    let mut direct = base.clone();
    direct.direct_routing = true;
    let out_direct = run_ring_queries(&db, std::slice::from_ref(&query), &direct).expect("run");
    assert!(out_direct.results[0].same_contents(&oracle));
    let out_normal = run_ring_queries(&db, std::slice::from_ref(&query), &base).expect("run");
    println!(
        "direct routing: outer ring {} KB vs {} KB store-and-forward ({} pages IP->IP)",
        out_direct.metrics.outer_ring.bytes / 1024,
        out_normal.metrics.outer_ring.bytes / 1024,
        out_direct.metrics.direct_routed_pages
    );
}

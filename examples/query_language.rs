//! A tour of the s-expression query language and the full operator set —
//! restrict, project (with and without duplicate elimination), θ-joins,
//! cross product, union, difference, append, and delete — each executed on
//! the oracle and on the data-flow machine.
//!
//! ```sh
//! cargo run --release -p df-bench --example query_language
//! ```

use df_core::{run_queries, AllocationStrategy, Granularity, MachineParams};
use df_query::{execute, parse_query, render_tree, ExecParams};
use df_relalg::{Catalog, DataType, Relation, Schema, Tuple, Value};

fn db() -> Catalog {
    let mut db = Catalog::new();
    let items = Schema::build()
        .attr("sku", DataType::Int)
        .attr("kind", DataType::Str(8))
        .attr("price", DataType::Int)
        .attr("in_stock", DataType::Bool)
        .finish()
        .expect("schema");
    db.insert(
        Relation::from_tuples(
            "items",
            items,
            512,
            (0..60).map(|i| {
                Tuple::new(vec![
                    Value::Int(i),
                    Value::Str(["widget", "gadget", "gizmo"][(i % 3) as usize].into()),
                    Value::Int(100 + i * 7),
                    Value::Bool(i % 4 != 0),
                ])
            }),
        )
        .expect("items"),
    )
    .expect("insert");
    let orders = Schema::build()
        .attr("oid", DataType::Int)
        .attr("item", DataType::Int)
        .finish()
        .expect("schema");
    db.insert(
        Relation::from_tuples(
            "orders",
            orders,
            512,
            (0..40).map(|o| Tuple::new(vec![Value::Int(o), Value::Int((o * 13) % 60)])),
        )
        .expect("orders"),
    )
    .expect("insert");
    db
}

fn main() {
    let mut db = db();
    let demos: &[(&str, &str)] = &[
        ("restrict, booleans and strings",
         "(restrict (scan items) (and (= in_stock #t) (= kind \"widget\")))"),
        ("projection (bag semantics)",
         "(project (scan items) (kind price))"),
        ("projection with duplicate elimination — §5's hard operator",
         "(project-distinct (scan items) (kind))"),
        ("equi-join through a foreign key",
         "(join (scan orders) (scan items) (= item sku))"),
        ("θ-join (non-equi): cheaper pairs",
         "(join (restrict (scan items) (< sku 5)) (restrict (scan items) (< sku 5)) (< price price))"),
        ("cross product",
         "(cross (restrict (scan items) (< sku 3)) (restrict (scan orders) (< oid 3)))"),
        ("union (set semantics)",
         "(union (restrict (scan items) (< price 200)) (restrict (scan items) (> price 450)))"),
        ("difference",
         "(difference (scan items) (restrict (scan items) (= in_stock #f)))"),
    ];

    let params = MachineParams::with_processors(4);
    for (label, text) in demos {
        let q = parse_query(&db, text).expect("parses");
        let oracle = execute(&mut db.clone(), &q, &ExecParams::default()).expect("oracle");
        let machine = run_queries(
            &db,
            std::slice::from_ref(&q),
            &params,
            Granularity::Page,
            AllocationStrategy::default(),
        )
        .expect("machine");
        assert!(
            machine.results[0].same_contents(&oracle),
            "mismatch: {text}"
        );
        println!(
            "--- {label}\n{text}\n=> {} tuples (oracle == machine)\n",
            oracle.num_tuples()
        );
    }

    // Updates mutate the catalog.
    println!("--- updates");
    let del = parse_query(&db, "(delete items (= in_stock #f))").expect("parses");
    println!("{}", render_tree(&del));
    let deleted = execute(&mut db, &del, &ExecParams::default()).expect("delete runs");
    println!("deleted {} out-of-stock items", deleted.num_tuples());

    let app =
        parse_query(&db, "(append (restrict (scan items) (> price 500)) items)").expect("parses");
    let appended = execute(&mut db, &app, &ExecParams::default()).expect("append runs");
    println!(
        "re-appended {} premium items; items now has {} tuples",
        appended.num_tuples(),
        db.get("items").unwrap().num_tuples()
    );
}

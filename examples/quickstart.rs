//! Quickstart: build a small database, write a query, run it three ways —
//! oracle, data-flow machine (page granularity), and the §4 ring machine —
//! and confirm all three agree.
//!
//! ```sh
//! cargo run --release -p df-bench --example quickstart
//! ```

use df_core::{run_query, Granularity, MachineParams};
use df_query::{execute_readonly, parse_query, render_tree, ExecParams};
use df_relalg::{Catalog, DataType, Relation, Schema, Tuple, Value};
use df_ring::{run_ring_queries, RingParams};

fn main() {
    // 1. A database: employees and departments.
    let emp_schema = Schema::build()
        .attr("id", DataType::Int)
        .attr("dept", DataType::Int)
        .attr("salary", DataType::Int)
        .attr("name", DataType::Str(12))
        .finish()
        .expect("schema");
    let dept_schema = Schema::build()
        .attr("dno", DataType::Int)
        .attr("floor", DataType::Int)
        .finish()
        .expect("schema");

    let mut db = Catalog::new();
    db.insert(
        Relation::from_tuples(
            "emp",
            emp_schema,
            512,
            (0..200).map(|i| {
                Tuple::new(vec![
                    Value::Int(i),
                    Value::Int(i % 8),
                    Value::Int(20_000 + (i * 137) % 60_000),
                    Value::Str(format!("emp{i}")),
                ])
            }),
        )
        .expect("emp relation"),
    )
    .expect("insert emp");
    db.insert(
        Relation::from_tuples(
            "dept",
            dept_schema,
            512,
            (0..8).map(|d| Tuple::new(vec![Value::Int(d), Value::Int(d / 2 + 1)])),
        )
        .expect("dept relation"),
    )
    .expect("insert dept");
    println!("{db}");

    // 2. A query in the s-expression language: well-paid employees joined
    //    with their departments, keeping name and floor.
    let text = "(project
                   (join (restrict (scan emp) (> salary 40000))
                         (scan dept)
                         (= dept dno))
                   (name floor))";
    let query = parse_query(&db, text).expect("query parses");
    println!(
        "query tree (cf. paper Figure 2.1):\n{}",
        render_tree(&query)
    );

    // 3. The uniprocessor oracle.
    let oracle = execute_readonly(&db, &query, &ExecParams::default()).expect("oracle run");
    println!("oracle: {} result tuples", oracle.num_tuples());

    // 4. The data-flow machine at page-level granularity (§3.2).
    let params = MachineParams::with_processors(8);
    let (df_result, metrics) =
        run_query(&db, &query, &params, Granularity::Page).expect("data-flow run");
    println!(
        "data-flow machine: {} tuples in simulated {} ({} work units, {:.1}% processor utilization)",
        df_result.num_tuples(),
        metrics.elapsed,
        metrics.units_dispatched,
        metrics.processor_utilization() * 100.0
    );
    assert!(
        df_result.same_contents(&oracle),
        "data-flow result mismatch"
    );

    // 5. The §4 ring machine with distributed control.
    let ring = run_ring_queries(
        &db,
        std::slice::from_ref(&query),
        &RingParams::with_pools(2, 6),
    )
    .expect("ring run");
    println!(
        "ring machine: {} tuples in simulated {} ({} broadcasts, outer ring {:.2} Mbps avg)",
        ring.results[0].num_tuples(),
        ring.metrics.elapsed,
        ring.metrics.broadcasts,
        ring.metrics.outer_ring_mbps()
    );
    assert!(
        ring.results[0].same_contents(&oracle),
        "ring result mismatch"
    );

    println!("\nall three engines agree");
    for t in oracle.tuples().take(5) {
        println!("  {t}");
    }
    if oracle.num_tuples() > 5 {
        println!("  ... and {} more", oracle.num_tuples() - 5);
    }
}

//! Cross-crate storage-hierarchy behaviour: the three-level hierarchy under
//! a machine workload (conservation, spill behaviour, quota effects).

use df_core::{run_queries, AllocationStrategy, Granularity, MachineParams};
use df_ring::{run_ring_queries, RingParams};
use df_sim::SimTime;
use df_storage::{CacheParams, DiskCache, DiskParams, LocalMemory, MassStorage, PageId};
use df_workload::{benchmark_queries, generate_database, BenchmarkSpec};

#[test]
fn tiny_cache_forces_spills_big_cache_avoids_them() {
    let spec = BenchmarkSpec::scaled(0.02);
    let db = generate_database(&spec.database);
    let queries = benchmark_queries(&db, &spec).unwrap();
    let mut tiny = MachineParams::with_processors(8);
    tiny.cache.frames = 16;
    let mut big = MachineParams::with_processors(8);
    big.cache.frames = 4096;
    let m_tiny = run_queries(
        &db,
        &queries,
        &tiny,
        Granularity::Relation,
        AllocationStrategy::default(),
    )
    .unwrap()
    .metrics;
    let m_big = run_queries(
        &db,
        &queries,
        &big,
        Granularity::Relation,
        AllocationStrategy::default(),
    )
    .unwrap()
    .metrics;
    assert!(
        m_tiny.disk_write.bytes > m_big.disk_write.bytes,
        "tiny cache must spill more ({} vs {})",
        m_tiny.disk_write.bytes,
        m_big.disk_write.bytes
    );
    assert_eq!(
        m_big.disk_write.bytes, 0,
        "4096 frames should absorb everything"
    );
    assert!(m_tiny.elapsed > m_big.elapsed);
}

#[test]
fn source_reads_are_bounded_by_database_size_with_broadcast_joins() {
    // With broadcast joins every base page is read from disk at most once
    // per consuming instruction; the benchmark touches relations from
    // multiple queries, so reads are bounded by (instructions × db size)
    // but must at least cover each referenced relation once.
    let spec = BenchmarkSpec::scaled(0.02);
    let db = generate_database(&spec.database);
    let queries = benchmark_queries(&db, &spec).unwrap();
    let mut p = MachineParams::with_processors(8);
    p.cache.frames = 4096;
    let m = run_queries(
        &db,
        &queries,
        &p,
        Granularity::Page,
        AllocationStrategy::default(),
    )
    .unwrap()
    .metrics;
    let db_bytes = db.total_bytes() as u64;
    assert!(
        m.disk_read.bytes >= db_bytes / 4,
        "benchmark must actually read the database"
    );
    assert!(
        m.disk_read.bytes <= 4 * db_bytes,
        "disk reads {} exceed 4x the database ({}); caching is broken",
        m.disk_read.bytes,
        db_bytes
    );
}

#[test]
fn ring_ic_memory_pressure_spills_into_cache_segments() {
    let spec = BenchmarkSpec::scaled(0.01);
    let db = generate_database(&spec.database);
    let queries = benchmark_queries(&db, &spec).unwrap();
    let mut tight = RingParams::with_pools(3, 6);
    tight.ic_memory_pages = 2;
    tight.cache.frames = 512;
    let mut roomy = RingParams::with_pools(3, 6);
    roomy.ic_memory_pages = 512;
    roomy.cache.frames = 512;
    let m_tight = run_ring_queries(&db, &queries, &tight).unwrap().metrics;
    let m_roomy = run_ring_queries(&db, &queries, &roomy).unwrap().metrics;
    assert!(
        m_tight.cache_in.bytes > m_roomy.cache_in.bytes,
        "tight IC memories must push more into the cache ({} vs {})",
        m_tight.cache_in.bytes,
        m_roomy.cache_in.bytes
    );
}

#[test]
fn device_timing_composes_in_a_hierarchy() {
    // Unit-style sanity across the three levels with one page.
    let mut disk = MassStorage::new(DiskParams::default());
    let mut cache = DiskCache::new(CacheParams {
        frames: 2,
        bytes_per_sec: 4e6,
        ports: 1,
    });
    let mut local = LocalMemory::new(2);
    let page = PageId(1);
    disk.preload(page);

    let t0 = SimTime::ZERO;
    let (_, t1) = disk.read(t0, page, 16_384);
    let (_, t2, evicted) = cache.insert(t1, 0, page, 16_384);
    assert!(evicted.is_empty());
    assert!(t2 > t1 && t1 > t0);
    let spilled = local.insert(page, 16_384, |_| 16_384);
    assert!(spilled.is_empty());
    // Disk leg dominates: a 16 KB page at 3330 speeds is ~58 ms, the cache
    // leg ~4 ms.
    let disk_leg = t1.since(t0);
    let cache_leg = t2.since(t1);
    assert!(disk_leg.as_millis_f64() > 10.0 * cache_leg.as_millis_f64());
}

#[test]
fn per_ic_quota_isolation_under_workload() {
    // Two ICs share a cache; quotas keep one IC's spill storm from evicting
    // the other's pages.
    let mut cache = DiskCache::new(CacheParams {
        frames: 8,
        bytes_per_sec: 4e6,
        ports: 2,
    });
    cache.set_quota(0, 4);
    cache.set_quota(1, 4);
    for i in 0..4u64 {
        cache.insert(SimTime::ZERO, 1, PageId(100 + i), 1000);
    }
    // IC 0 floods far past its quota.
    let mut evicted_own = 0;
    for i in 0..20u64 {
        let (_, _, ev) = cache.insert(SimTime::ZERO, 0, PageId(i), 1000);
        evicted_own += ev.len();
    }
    assert!(evicted_own >= 16, "IC 0 must recycle its own segment");
    for i in 0..4u64 {
        assert!(
            cache.contains(PageId(100 + i)),
            "IC 1's page {} was stolen",
            100 + i
        );
    }
}

//! The central correctness property of the reproduction: for every query,
//! at every operand granularity, under every allocation strategy, the
//! simulated data-flow machine produces exactly the tuples the uniprocessor
//! oracle produces (as multisets — the machines interleave work).

use df_core::{run_queries, run_query, AllocationStrategy, Granularity, MachineParams};
use df_query::{execute_readonly, parse_query, ExecParams, JoinAlgorithm};
use df_relalg::Catalog;
use df_sim::rng::SimRng;
use df_workload::{benchmark_queries, chain_query, generate_database, random_query, BenchmarkSpec};

fn setup() -> (Catalog, BenchmarkSpec) {
    let spec = BenchmarkSpec::scaled(0.01); // ~55 KB, fast enough for CI
    let db = generate_database(&spec.database);
    (db, spec)
}

fn machine_params() -> MachineParams {
    let mut p = MachineParams::with_processors(6);
    p.cache.frames = 64;
    p
}

#[test]
fn benchmark_queries_match_oracle_at_every_granularity() {
    let (db, spec) = setup();
    let queries = benchmark_queries(&db, &spec).unwrap();
    let oracles: Vec<_> = queries
        .iter()
        .map(|q| execute_readonly(&db, q, &ExecParams::default()).unwrap())
        .collect();
    for granularity in Granularity::ALL {
        for (i, (q, oracle)) in queries.iter().zip(&oracles).enumerate() {
            let (out, _) = run_query(&db, q, &machine_params(), granularity).unwrap();
            assert!(
                out.same_contents(oracle),
                "Q{} at {granularity} granularity: {} tuples vs oracle {}",
                i + 1,
                out.num_tuples(),
                oracle.num_tuples()
            );
        }
    }
}

#[test]
fn whole_benchmark_batch_matches_oracle() {
    let (db, spec) = setup();
    let queries = benchmark_queries(&db, &spec).unwrap();
    let out = run_queries(
        &db,
        &queries,
        &machine_params(),
        Granularity::Page,
        AllocationStrategy::default(),
    )
    .unwrap();
    for (i, (q, rel)) in queries.iter().zip(&out.results).enumerate() {
        let oracle = execute_readonly(&db, q, &ExecParams::default()).unwrap();
        assert!(rel.same_contents(&oracle), "batched Q{} mismatch", i + 1);
    }
    assert_eq!(out.metrics.query_completions.len(), queries.len());
}

#[test]
fn every_allocation_strategy_is_correct() {
    let (db, spec) = setup();
    let q = chain_query(&db, 15, 2, 2, 3, spec.cutoff()).unwrap();
    let oracle = execute_readonly(&db, &q, &ExecParams::default()).unwrap();
    for strategy in AllocationStrategy::ALL {
        let out = run_queries(
            &db,
            std::slice::from_ref(&q),
            &machine_params(),
            Granularity::Page,
            strategy,
        )
        .unwrap();
        assert!(
            out.results[0].same_contents(&oracle),
            "strategy {strategy} produced wrong results"
        );
    }
}

#[test]
fn random_queries_match_oracle() {
    let (db, spec) = setup();
    let mut rng = SimRng::new(0xbeef);
    for trial in 0..15 {
        let q = random_query(&db, 15, 3, spec.cutoff(), &mut rng).unwrap();
        let oracle = execute_readonly(&db, &q, &ExecParams::default()).unwrap();
        for granularity in [Granularity::Page, Granularity::Relation] {
            let (out, _) = run_query(&db, &q, &machine_params(), granularity).unwrap();
            assert!(
                out.same_contents(&oracle),
                "trial {trial} at {granularity} granularity"
            );
        }
    }
}

#[test]
fn oracle_join_algorithms_agree_with_machine() {
    let (db, spec) = setup();
    let q = chain_query(&db, 15, 4, 1, 2, spec.cutoff()).unwrap();
    let nl = execute_readonly(
        &db,
        &q,
        &ExecParams {
            join_algorithm: JoinAlgorithm::NestedLoops,
            ..Default::default()
        },
    )
    .unwrap();
    let sm = execute_readonly(
        &db,
        &q,
        &ExecParams {
            join_algorithm: JoinAlgorithm::SortMerge,
            ..Default::default()
        },
    )
    .unwrap();
    let (machine, _) = run_query(&db, &q, &machine_params(), Granularity::Page).unwrap();
    assert!(nl.same_contents(&sm));
    assert!(machine.same_contents(&nl));
}

#[test]
fn non_standard_page_sizes_are_correct() {
    let (db, spec) = setup();
    let q = chain_query(&db, 15, 1, 1, 2, spec.cutoff()).unwrap();
    let oracle = execute_readonly(&db, &q, &ExecParams::default()).unwrap();
    for page_size in [216usize, 516, 2016, 4016] {
        let mut p = machine_params();
        p.page_size = page_size;
        let out = run_queries(
            &db,
            std::slice::from_ref(&q),
            &p,
            Granularity::Page,
            AllocationStrategy::default(),
        )
        .unwrap();
        assert!(
            out.results[0].same_contents(&oracle),
            "page size {page_size} broke the pipeline"
        );
    }
}

#[test]
fn updates_agree_between_machine_and_oracle() {
    let (db, _) = setup();
    // Delete via the machine.
    let mut db_machine = db.clone();
    let tree = parse_query(&db, "(delete r03 (< val 250))").unwrap();
    let out = run_queries(
        &db_machine,
        std::slice::from_ref(&tree),
        &machine_params(),
        Granularity::Page,
        AllocationStrategy::default(),
    )
    .unwrap();
    out.apply_updates(&mut db_machine).unwrap();
    // Delete via the oracle.
    let mut db_oracle = db.clone();
    df_query::execute(&mut db_oracle, &tree, &ExecParams::default()).unwrap();
    assert!(db_machine
        .get("r03")
        .unwrap()
        .same_contents(db_oracle.get("r03").unwrap()));
}

//! Ring machine (§4) vs oracle and vs the centralized df-core machine on
//! the paper's workload, plus protocol-level invariants at scale.

use df_core::{run_queries, AllocationStrategy, Granularity, MachineParams};
use df_query::{execute_readonly, ExecParams};
use df_relalg::Catalog;
use df_ring::{run_ring_queries, RingParams};
use df_workload::{benchmark_queries, chain_query, generate_database, BenchmarkSpec};

fn setup() -> (Catalog, BenchmarkSpec) {
    let spec = BenchmarkSpec::scaled(0.01);
    let db = generate_database(&spec.database);
    (db, spec)
}

fn ring_params() -> RingParams {
    let mut p = RingParams::with_pools(4, 8);
    p.cache.frames = 128;
    p.ic_memory_pages = 16;
    p
}

#[test]
fn ring_machine_runs_the_whole_benchmark_correctly() {
    let (db, spec) = setup();
    let queries = benchmark_queries(&db, &spec).unwrap();
    let out = run_ring_queries(&db, &queries, &ring_params()).unwrap();
    for (i, (q, rel)) in queries.iter().zip(&out.results).enumerate() {
        let oracle = execute_readonly(&db, q, &ExecParams::default()).unwrap();
        assert!(
            rel.same_contents(&oracle),
            "ring Q{}: {} tuples vs oracle {}",
            i + 1,
            rel.num_tuples(),
            oracle.num_tuples()
        );
    }
    // Read-only benchmark: concurrency control must not serialize anything.
    assert_eq!(out.metrics.queries_delayed_by_cc, 0);
    // The join protocol must actually have run.
    assert!(out.metrics.broadcasts > 0);
    assert!(out.metrics.instruction_packets > 0);
    assert!(out.metrics.result_packets > 0);
}

#[test]
fn ring_and_centralized_machine_agree_on_results() {
    let (db, spec) = setup();
    let q = chain_query(&db, 15, 3, 2, 3, spec.cutoff()).unwrap();
    let central = run_queries(
        &db,
        std::slice::from_ref(&q),
        &MachineParams::with_processors(8),
        Granularity::Page,
        AllocationStrategy::default(),
    )
    .unwrap();
    let ring = run_ring_queries(&db, std::slice::from_ref(&q), &ring_params()).unwrap();
    assert!(ring.results[0].same_contents(&central.results[0]));
}

#[test]
fn inner_ring_stays_far_below_its_budget() {
    // Paper §4.1: "a bandwidth of 1-2 million bits per second should be
    // sufficient" for the inner ring.
    let (db, spec) = setup();
    let queries = benchmark_queries(&db, &spec).unwrap();
    let out = run_ring_queries(&db, &queries, &ring_params()).unwrap();
    let mbps = out.metrics.inner_ring_mbps();
    assert!(
        mbps < 2.0,
        "inner ring needs {mbps:.2} Mbps, exceeding the paper's budget"
    );
}

#[test]
fn join_protocol_counters_are_consistent() {
    let (db, spec) = setup();
    let q = chain_query(&db, 15, 0, 1, 0, spec.cutoff()).unwrap();
    let mut p = ring_params();
    p.ip_memory_pages = 2; // force misses
    let out = run_ring_queries(&db, std::slice::from_ref(&q), &p).unwrap();
    let m = &out.metrics;
    assert!(m.broadcasts > 0);
    // Every missed page is eventually caught up, so the run completed; the
    // catch-up traffic shows up as extra control packets.
    if m.pages_missed > 0 {
        assert!(m.control_packets > m.result_packets);
    }
}

#[test]
fn direct_routing_is_correct_on_the_benchmark() {
    let (db, spec) = setup();
    let queries = benchmark_queries(&db, &spec).unwrap();
    let mut p = ring_params();
    p.direct_routing = true;
    let out = run_ring_queries(&db, &queries, &p).unwrap();
    for (i, (q, rel)) in queries.iter().zip(&out.results).enumerate() {
        let oracle = execute_readonly(&db, q, &ExecParams::default()).unwrap();
        assert!(rel.same_contents(&oracle), "direct-routed Q{}", i + 1);
    }
    assert!(out.metrics.direct_routed_pages > 0);
}

#[test]
fn pool_size_sweep_is_deterministic_and_correct() {
    let (db, spec) = setup();
    let q = chain_query(&db, 15, 5, 1, 2, spec.cutoff()).unwrap();
    let oracle = execute_readonly(&db, &q, &ExecParams::default()).unwrap();
    for (ics, ips) in [(1usize, 1usize), (2, 3), (4, 8), (6, 16)] {
        let mut p = ring_params();
        p.ics = ics;
        p.ips = ips;
        let a = run_ring_queries(&db, std::slice::from_ref(&q), &p).unwrap();
        let b = run_ring_queries(&db, std::slice::from_ref(&q), &p).unwrap();
        assert!(a.results[0].same_contents(&oracle), "{ics} ICs / {ips} IPs");
        assert_eq!(
            a.metrics.elapsed, b.metrics.elapsed,
            "{ics}/{ips} not deterministic"
        );
        assert_eq!(a.metrics.outer_ring.bytes, b.metrics.outer_ring.bytes);
    }
}

//! Behavioural (shape) properties of the reproduction on the paper's
//! benchmark: the qualitative claims of §3 must hold on the simulated
//! machine, at reduced scale, before the full-scale experiments are
//! meaningful.

use df_core::{bandwidth, run_queries, AllocationStrategy, Granularity, MachineParams};
use df_workload::{benchmark_queries, generate_database, BenchmarkSpec};

fn run(
    db: &df_relalg::Catalog,
    queries: &[df_query::QueryTree],
    params: &MachineParams,
    g: Granularity,
) -> df_core::Metrics {
    run_queries(db, queries, params, g, AllocationStrategy::default())
        .unwrap()
        .metrics
}

fn setup() -> (df_relalg::Catalog, Vec<df_query::QueryTree>) {
    let spec = BenchmarkSpec::scaled(0.02);
    let db = generate_database(&spec.database);
    let queries = benchmark_queries(&db, &spec).unwrap();
    (db, queries)
}

fn params() -> MachineParams {
    let mut p = MachineParams::with_processors(16);
    p.cache.frames = 48; // pressure: materialized intermediates must spill
    p
}

/// §3.2 / Figure 3.1: page-level granularity beats relation-level.
#[test]
fn page_level_beats_relation_level() {
    let (db, queries) = setup();
    let rel = run(&db, &queries, &params(), Granularity::Relation);
    let page = run(&db, &queries, &params(), Granularity::Page);
    let ratio = rel.elapsed.as_secs_f64() / page.elapsed.as_secs_f64();
    assert!(
        ratio > 1.2,
        "expected a clear page-level win, got ratio {ratio:.2} \
         (relation {}, page {})",
        rel.elapsed,
        page.elapsed
    );
}

/// §3.2: the page-level win comes from reduced traffic between the cache
/// and mass storage ("minimize movement of data between a shared data cache
/// and secondary memory").
#[test]
fn page_level_moves_less_data_to_disk() {
    let (db, queries) = setup();
    let rel = run(&db, &queries, &params(), Granularity::Relation);
    let page = run(&db, &queries, &params(), Granularity::Page);
    let rel_disk = rel.disk_read.bytes + rel.disk_write.bytes;
    let page_disk = page.disk_read.bytes + page.disk_write.bytes;
    assert!(
        page_disk < rel_disk,
        "page-level disk traffic {page_disk} should be below relation-level {rel_disk}"
    );
}

/// §3.3: tuple-level granularity floods the arbitration network — roughly
/// an order of magnitude more traffic than page level on join work.
#[test]
fn tuple_level_network_traffic_explodes() {
    let (db, queries) = setup();
    let page = run(&db, &queries, &params(), Granularity::Page);
    let tuple = run(&db, &queries, &params(), Granularity::Tuple);
    let ratio = tuple.arbitration.bytes as f64 / page.arbitration.bytes as f64;
    assert!(
        ratio > 3.0,
        "tuple-level arbitration traffic only {ratio:.1}x page level"
    );
    assert!(
        tuple.arbitration.transfers > 10 * page.arbitration.transfers,
        "tuple-level packet count should explode ({} vs {})",
        tuple.arbitration.transfers,
        page.arbitration.transfers
    );
    // And the flood costs wall-clock time.
    assert!(tuple.elapsed >= page.elapsed);
}

/// The measured byte counters agree with the closed-form §3.3 model for an
/// isolated, unrestricted join (no broadcast, which is what the paper's
/// formula assumes).
#[test]
fn measured_join_traffic_matches_closed_form() {
    let spec = BenchmarkSpec::scaled(0.01);
    let db = generate_database(&spec.database);
    // Unrestricted single join so n and m are known exactly.
    let q = df_workload::chain_query(&db, 15, 9, 1, 0, df_workload::VAL_DOMAIN).unwrap();
    let mut p = params();
    p.broadcast_join = false; // the §3.3 analysis pre-dates broadcast
    let tuple = run(&db, std::slice::from_ref(&q), &p, Granularity::Tuple);

    let outer = db.get("r09").unwrap();
    let inner = db.get("r10").unwrap();
    let (n, m) = (outer.num_tuples(), inner.num_tuples());
    let predicted_join_packets = bandwidth::tuple_level_join_packets(n, m);
    // Measured arbitration packets = join pairs + per-tuple restrict-free
    // scan packets for the outer/inner feeds + result emission; the join
    // pairs dominate. Allow 25% slack for the non-join traffic.
    let measured = tuple.arbitration.transfers;
    assert!(
        measured as f64 >= predicted_join_packets as f64,
        "measured {measured} packets below the join floor {predicted_join_packets}"
    );
    assert!(
        (measured as f64) < 1.25 * predicted_join_packets as f64 + (n + m) as f64 * 2.0,
        "measured {measured} packets far above prediction {predicted_join_packets}"
    );
}

/// More processors help (up to saturation) under page-level granularity.
/// A roomy cache keeps the run compute-bound so the processor count is the
/// binding resource (the tight-cache configuration is disk-bound by
/// design, and disk arms don't multiply with processors).
#[test]
fn page_level_scales_with_processors() {
    let (db, queries) = setup();
    let mut p = params();
    p.cache.frames = 4096;
    // Sequential-scan disk model (cylinder-at-a-time reads): per-page seek
    // would otherwise dominate this tiny 2% scale and hide compute scaling.
    p.disk.avg_seek = df_sim::Duration::from_micros(500);
    p.disk.avg_rotational_latency = df_sim::Duration::from_micros(500);
    p.processors = 2;
    let small = run(&db, &queries, &p, Granularity::Page);
    p.processors = 16;
    let big = run(&db, &queries, &p, Granularity::Page);
    assert!(
        big.elapsed.as_secs_f64() < small.elapsed.as_secs_f64() * 0.8,
        "16 processors ({}) should clearly beat 2 ({})",
        big.elapsed,
        small.elapsed
    );
}

/// Processor utilization is sane: between 0 and 1, and higher with fewer
/// processors.
#[test]
fn utilization_is_consistent() {
    let (db, queries) = setup();
    let mut p = params();
    p.processors = 2;
    let small = run(&db, &queries, &p, Granularity::Page);
    p.processors = 32;
    let big = run(&db, &queries, &p, Granularity::Page);
    for m in [&small, &big] {
        let u = m.processor_utilization();
        assert!((0.0..=1.0).contains(&u), "utilization {u} out of range");
    }
    assert!(small.processor_utilization() > big.processor_utilization());
}

/// The paper's headline closed-form: page-level needs ~1/10 the bandwidth
/// of tuple-level for the standard 100-byte-tuple, 10-per-page setup.
#[test]
fn closed_form_ratio_is_ten() {
    let r = bandwidth::tuple_over_page_ratio(1000, 1000, 100, 10, 0);
    assert!((r - 10.0).abs() < 1e-9);
    // With overhead c the ratio grows (page amortizes c over 100 tuples).
    let r_c = bandwidth::tuple_over_page_ratio(1000, 1000, 100, 10, 50);
    assert!(r_c > 10.0);
}

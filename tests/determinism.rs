//! Reproducibility: every layer of the system is a pure function of its
//! seed and parameters. Identical runs must agree to the byte and the
//! nanosecond — this is what makes the experiment tables in EXPERIMENTS.md
//! reproducible on any machine.

use df_core::{run_queries, AllocationStrategy, Granularity, MachineParams};
use df_ring::{run_ring_queries, RingParams};
use df_workload::{benchmark_queries, generate_database, BenchmarkSpec, DatabaseSpec};

#[test]
fn database_generation_is_deterministic() {
    let spec = DatabaseSpec::scaled(0.02);
    let a = generate_database(&spec);
    let b = generate_database(&spec);
    assert_eq!(a, b);
    // Byte-level: equal total size and per-relation pages.
    assert_eq!(a.total_bytes(), b.total_bytes());
}

#[test]
fn core_machine_is_deterministic_across_granularities() {
    let spec = BenchmarkSpec::scaled(0.01);
    let db = generate_database(&spec.database);
    let queries = benchmark_queries(&db, &spec).unwrap();
    let params = MachineParams::with_processors(8);
    for g in Granularity::ALL {
        let a = run_queries(&db, &queries, &params, g, AllocationStrategy::default()).unwrap();
        let b = run_queries(&db, &queries, &params, g, AllocationStrategy::default()).unwrap();
        assert_eq!(a.metrics.elapsed, b.metrics.elapsed, "granularity {g}");
        assert_eq!(a.metrics.arbitration.bytes, b.metrics.arbitration.bytes);
        assert_eq!(a.metrics.distribution.bytes, b.metrics.distribution.bytes);
        assert_eq!(a.metrics.disk_read.bytes, b.metrics.disk_read.bytes);
        assert_eq!(a.metrics.disk_write.bytes, b.metrics.disk_write.bytes);
        assert_eq!(a.metrics.units_dispatched, b.metrics.units_dispatched);
        assert_eq!(a.metrics.query_completions, b.metrics.query_completions);
        for (x, y) in a.results.iter().zip(&b.results) {
            assert_eq!(x, y, "result relations differ at {g}");
        }
    }
}

#[test]
fn ring_machine_is_deterministic() {
    let spec = BenchmarkSpec::scaled(0.01);
    let db = generate_database(&spec.database);
    let queries = benchmark_queries(&db, &spec).unwrap();
    let params = RingParams::with_pools(3, 6);
    let a = run_ring_queries(&db, &queries, &params).unwrap();
    let b = run_ring_queries(&db, &queries, &params).unwrap();
    assert_eq!(a.metrics.elapsed, b.metrics.elapsed);
    assert_eq!(a.metrics.outer_ring.bytes, b.metrics.outer_ring.bytes);
    assert_eq!(a.metrics.inner_ring.bytes, b.metrics.inner_ring.bytes);
    assert_eq!(a.metrics.broadcasts, b.metrics.broadcasts);
    assert_eq!(a.metrics.pages_missed, b.metrics.pages_missed);
    assert_eq!(a.metrics.requests_ignored, b.metrics.requests_ignored);
    assert_eq!(a.metrics.query_completions, b.metrics.query_completions);
    for (x, y) in a.results.iter().zip(&b.results) {
        assert_eq!(x, y);
    }
}

#[test]
fn different_seeds_give_different_databases_but_both_run() {
    let mut spec_a = BenchmarkSpec::scaled(0.01);
    let mut spec_b = BenchmarkSpec::scaled(0.01);
    spec_a.database.seed = 1;
    spec_b.database.seed = 2;
    let db_a = generate_database(&spec_a.database);
    let db_b = generate_database(&spec_b.database);
    assert_ne!(db_a, db_b);
    let params = MachineParams::with_processors(4);
    for (db, spec) in [(&db_a, &spec_a), (&db_b, &spec_b)] {
        let queries = benchmark_queries(db, spec).unwrap();
        let out = run_queries(
            db,
            &queries,
            &params,
            Granularity::Page,
            AllocationStrategy::default(),
        )
        .unwrap();
        assert!(out.metrics.elapsed > df_sim::SimTime::ZERO);
    }
}

#[test]
fn seeded_results_are_stable_across_this_build() {
    // A change to the simulator's event ordering or cost model shows up
    // here as a changed fingerprint, forcing EXPERIMENTS.md to be re-run.
    let spec = BenchmarkSpec::scaled(0.01);
    let db = generate_database(&spec.database);
    let queries = benchmark_queries(&db, &spec).unwrap();
    let out = run_queries(
        &db,
        &queries,
        &MachineParams::with_processors(8),
        Granularity::Page,
        AllocationStrategy::default(),
    )
    .unwrap();
    let tuple_total: usize = out.results.iter().map(|r| r.num_tuples()).sum();
    // The tuple total is a data-path property: independent of timing
    // models, it must equal the oracle's count exactly.
    let oracle_total: usize = queries
        .iter()
        .map(|q| {
            df_query::execute_readonly(&db, q, &df_query::ExecParams::default())
                .unwrap()
                .num_tuples()
        })
        .sum();
    assert_eq!(tuple_total, oracle_total);
}
